package repro

import (
	"encoding/csv"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/catalog"
	"repro/internal/experiment"
)

// CSV export: the paper's artifact ships Python scripts that regenerate
// each figure from pickled data; the equivalent here writes every figure's
// series as CSV files that any plotting tool can consume. One file per
// figure panel, named after the paper's numbering.

func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("repro: creating export dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("repro: creating %s: %w", name, err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func fmtF(v float64) string {
	if math.IsNaN(v) {
		return "NA"
	}
	return strconv.FormatFloat(v, 'f', 4, 64)
}

// ExportCSV writes table2.csv, figure03*.csv, figure04*.csv, figure05.csv,
// figure08*.csv, figure09.csv and figure10*.csv into dir.
func ExportCSV(c *Collected, dir string) error {
	// Table 2.
	t2 := Table2(c)
	var t2rows [][]string
	for _, v := range []float64{3.0, 2.5, 2.0, 1.5, 1.0} {
		t2rows = append(t2rows, []string{fmtF(v), fmtF(t2.SPS[v]), fmtF(t2.IF[v])})
	}
	if err := writeCSV(dir, "table02.csv", []string{"value", "sps_fraction", "if_fraction"}, t2rows); err != nil {
		return err
	}

	// Figure 3: one row per class, one column per day.
	f3 := Fig3(c)
	exportHeat := func(name string, byClass map[catalog.Class][]float64) error {
		header := []string{"class"}
		for d := 0; d < f3.Days; d++ {
			header = append(header, "day"+strconv.Itoa(d))
		}
		var rows [][]string
		for _, cl := range catalog.Classes {
			row := []string{string(cl)}
			for _, v := range byClass[cl] {
				row = append(row, fmtF(v))
			}
			rows = append(rows, row)
		}
		return writeCSV(dir, name, header, rows)
	}
	if err := exportHeat("figure03a.csv", f3.SPSByClass); err != nil {
		return err
	}
	if err := exportHeat("figure03b.csv", f3.IFByClass); err != nil {
		return err
	}

	// Figure 4: class x region.
	f4 := Fig4(c)
	exportSpatial := func(name string, m map[catalog.Class]map[string]float64) error {
		header := append([]string{"class"}, f4.Regions...)
		var rows [][]string
		for _, cl := range catalog.Classes {
			row := []string{string(cl)}
			for _, reg := range f4.Regions {
				row = append(row, fmtF(m[cl][reg]))
			}
			rows = append(rows, row)
		}
		return writeCSV(dir, name, header, rows)
	}
	if err := exportSpatial("figure04a.csv", f4.SPS); err != nil {
		return err
	}
	if err := exportSpatial("figure04b.csv", f4.IF); err != nil {
		return err
	}

	// Figure 5.
	f5 := Fig5(c)
	var f5rows [][]string
	for _, r := range f5.Rows {
		f5rows = append(f5rows, []string{string(r.Size), fmtF(r.MeanSPS), fmtF(r.MeanIF), strconv.Itoa(r.NumTypes)})
	}
	if err := writeCSV(dir, "figure05.csv", []string{"size", "sps_mean", "if_mean", "num_types"}, f5rows); err != nil {
		return err
	}

	// Figure 8: CDF points per pairing.
	f8 := Fig8(c)
	exportCDF := func(name string, samples []float64) error {
		cdf := analysis.NewCDF(samples)
		var rows [][]string
		for _, p := range cdf.Points(500) {
			rows = append(rows, []string{fmtF(p[0]), fmtF(p[1])})
		}
		return writeCSV(dir, name, []string{"value", "cdf"}, rows)
	}
	if err := exportCDF("figure08_sps_if.csv", f8.Sets.SPSvsIF); err != nil {
		return err
	}
	if err := exportCDF("figure08_if_price.csv", f8.Sets.IFvsPrice); err != nil {
		return err
	}
	if err := exportCDF("figure08_sps_price.csv", f8.Sets.SPSvsPrice); err != nil {
		return err
	}

	// Figure 9.
	f9 := Fig9(c)
	var f9rows [][]string
	for _, d := range []float64{0, 0.5, 1, 1.5, 2} {
		f9rows = append(f9rows, []string{fmtF(d), fmtF(f9.Histogram[d])})
	}
	if err := writeCSV(dir, "figure09.csv", []string{"difference", "fraction"}, f9rows); err != nil {
		return err
	}

	// Figure 10: hours-between-changes CDFs.
	f10 := Fig10(c)
	if err := exportCDFObj(dir, "figure10_sps.csv", f10.SPS); err != nil {
		return err
	}
	if err := exportCDFObj(dir, "figure10_price.csv", f10.Price); err != nil {
		return err
	}
	return exportCDFObj(dir, "figure10_if.csv", f10.IF)
}

func exportCDFObj(dir, name string, c analysis.CDF) error {
	var rows [][]string
	for _, p := range c.Points(500) {
		rows = append(rows, []string{fmtF(p[0]), fmtF(p[1])})
	}
	return writeCSV(dir, name, []string{"hours", "cdf"}, rows)
}

// ExportExperimentCSV writes table03.csv and the Figure 11 CDFs into dir.
func ExportExperimentCSV(r Experiment54Result, dir string) error {
	var t3rows [][]string
	for _, cc := range experiment.Categories {
		st := r.Result.ByCategory[cc]
		t3rows = append(t3rows, []string{
			cc.String(),
			fmtF(st.NotFulfilledPct()),
			fmtF(st.InterruptedPct()),
			strconv.Itoa(st.Total),
		})
	}
	if err := writeCSV(dir, "table03.csv", []string{"category", "not_fulfilled_pct", "interrupted_pct", "n"}, t3rows); err != nil {
		return err
	}
	for _, cc := range experiment.Categories {
		st := r.Result.ByCategory[cc]
		label := sanitize(cc.String())
		if err := exportSecondsCDF(dir, "figure11a_"+label+".csv", st.FulfillLatenciesSec); err != nil {
			return err
		}
		if err := exportSecondsCDF(dir, "figure11b_"+label+".csv", st.TimeToInterruptSec); err != nil {
			return err
		}
	}
	return nil
}

func exportSecondsCDF(dir, name string, samples []float64) error {
	cdf := analysis.NewCDF(samples)
	var rows [][]string
	for _, p := range cdf.Points(500) {
		rows = append(rows, []string{fmtF(p[0]), fmtF(p[1])})
	}
	return writeCSV(dir, name, []string{"seconds", "cdf"}, rows)
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '-' {
			r = '_'
		}
		out = append(out, r)
	}
	return string(out)
}

// ExportTable4CSV writes table04.csv into dir.
func ExportTable4CSV(r Table4Result, dir string) error {
	var rows [][]string
	for _, m := range r.Methods {
		rows = append(rows, []string{m.Method, fmtF(m.Accuracy), fmtF(m.F1)})
	}
	return writeCSV(dir, "table04.csv", []string{"method", "accuracy", "macro_f1"}, rows)
}

// ExportFig6CSV writes the scatter counts of Figure 6 into dir.
func ExportFig6CSV(r Fig6Result, dir string) error {
	type cell struct {
		sum, comp, n int
	}
	var cells []cell
	for k, n := range r.Scatter {
		cells = append(cells, cell{k[0], k[1], n})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].sum != cells[j].sum {
			return cells[i].sum < cells[j].sum
		}
		return cells[i].comp < cells[j].comp
	})
	var rows [][]string
	for _, c := range cells {
		rows = append(rows, []string{strconv.Itoa(c.sum), strconv.Itoa(c.comp), strconv.Itoa(c.n)})
	}
	return writeCSV(dir, "figure06.csv", []string{"sum_of_singles", "composite", "count"}, rows)
}

// ExportFig7CSV writes the Figure 7 matrix into dir.
func ExportFig7CSV(r Fig7Result, dir string) error {
	header := []string{"class"}
	for _, n := range Fig7Targets {
		header = append(header, "n"+strconv.Itoa(n))
	}
	var rows [][]string
	for _, fc := range Fig7Classes {
		row := []string{string(fc.Class)}
		for _, v := range r.Means[fc.Class] {
			row = append(row, fmtF(v))
		}
		rows = append(rows, row)
	}
	return writeCSV(dir, "figure07.csv", header, rows)
}
