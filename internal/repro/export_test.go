package repro

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("opening %s: %v", path, err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	return rows
}

func TestExportCSV(t *testing.T) {
	c := quickCollected(t)
	dir := t.TempDir()
	if err := ExportCSV(c, dir); err != nil {
		t.Fatal(err)
	}
	wantFiles := []string{
		"table02.csv", "figure03a.csv", "figure03b.csv", "figure04a.csv",
		"figure04b.csv", "figure05.csv", "figure08_sps_if.csv",
		"figure08_if_price.csv", "figure08_sps_price.csv", "figure09.csv",
		"figure10_sps.csv", "figure10_price.csv", "figure10_if.csv",
	}
	for _, name := range wantFiles {
		rows := readCSV(t, filepath.Join(dir, name))
		if len(rows) < 2 {
			t.Errorf("%s has %d rows; want header + data", name, len(rows))
		}
	}
	// Table 2 structure: 5 value rows, fractions parseable.
	t2 := readCSV(t, filepath.Join(dir, "table02.csv"))
	if len(t2) != 6 {
		t.Errorf("table02.csv has %d rows, want 6", len(t2))
	}
	// Figure 3 has one row per class plus header, and days+1 columns.
	f3 := readCSV(t, filepath.Join(dir, "figure03a.csv"))
	if len(f3) != 17 {
		t.Errorf("figure03a.csv has %d rows, want 17 (header + 16 classes)", len(f3))
	}
	if len(f3[0]) != c.Days+1 {
		t.Errorf("figure03a.csv has %d columns, want %d", len(f3[0]), c.Days+1)
	}
	// Figure 4 contains NA cells.
	f4 := readCSV(t, filepath.Join(dir, "figure04a.csv"))
	foundNA := false
	for _, row := range f4[1:] {
		for _, cell := range row[1:] {
			if cell == "NA" {
				foundNA = true
			}
		}
	}
	if !foundNA {
		t.Error("figure04a.csv has no NA cells")
	}
}

func TestExportExperimentCSV(t *testing.T) {
	opt := DefaultExperiment54Options()
	opt.SampleFrac = 0.1
	opt.MaxPerCategory = 10
	opt.Horizon = 2 * time.Hour
	res, err := Experiment54(opt)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ExportExperimentCSV(res, dir); err != nil {
		t.Fatal(err)
	}
	t3 := readCSV(t, filepath.Join(dir, "table03.csv"))
	if len(t3) != 6 {
		t.Errorf("table03.csv has %d rows, want 6", len(t3))
	}
	// Category CDF files exist (fulfillments happen even in 2h for H-H).
	if rows := readCSV(t, filepath.Join(dir, "figure11a_H_H.csv")); len(rows) < 2 {
		t.Error("figure11a_H_H.csv empty")
	}
}

func TestExportFig7CSV(t *testing.T) {
	res, err := Fig7(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ExportFig7CSV(res, dir); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "figure07.csv"))
	if len(rows) != len(Fig7Classes)+1 {
		t.Errorf("figure07.csv has %d rows, want %d", len(rows), len(Fig7Classes)+1)
	}
	if len(rows[0]) != len(Fig7Targets)+1 {
		t.Errorf("figure07.csv has %d cols, want %d", len(rows[0]), len(Fig7Targets)+1)
	}
}

func TestExportFig6CSV(t *testing.T) {
	res, err := Fig6(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ExportFig6CSV(res, dir); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "figure06.csv"))
	total := 0
	for _, row := range rows[1:] {
		n, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("bad count %q", row[2])
		}
		total += n
	}
	if total != res.Total() {
		t.Errorf("scatter counts sum to %d, want %d", total, res.Total())
	}
}
