package repro

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/catalog"
	"repro/internal/experiment"
	"repro/internal/tsdb"
)

// sharedCollected caches one quick collection run across the archive-driven
// figure tests.
var (
	sharedOnce sync.Once
	shared     *Collected
	sharedErr  error
)

func quickCollected(t *testing.T) *Collected {
	t.Helper()
	sharedOnce.Do(func() {
		opt := QuickCollectOptions()
		shared, sharedErr = Collect(opt)
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return shared
}

func TestCollectValidation(t *testing.T) {
	if _, err := Collect(CollectOptions{Days: 0, SampleFrac: 0.1, Interval: time.Hour}); err == nil {
		t.Error("zero days accepted")
	}
	if _, err := Collect(CollectOptions{Days: 1, SampleFrac: 0, Interval: time.Hour}); err == nil {
		t.Error("zero sample fraction accepted")
	}
	if _, err := Collect(CollectOptions{Days: 1, SampleFrac: 2, Interval: time.Hour}); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestTable1AllStatesReachable(t *testing.T) {
	res, err := Table1(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.Reached {
			t.Errorf("status %q not reached in simulation", row.Status)
		}
	}
	if len(res.Trace) == 0 {
		t.Error("no transition trace")
	}
	if !strings.Contains(res.String(), "Pending Evaluation") {
		t.Error("rendering lacks status names")
	}
}

func TestFig1Reproduction(t *testing.T) {
	res, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if res.NaiveQueries != 9299 {
		t.Errorf("naive queries = %d, want 9299", res.NaiveQueries)
	}
	if res.OptimizedQueries < 1900 || res.OptimizedQueries > 2600 {
		t.Errorf("optimized queries = %d, want in [1900, 2600] (paper 2226)", res.OptimizedQueries)
	}
	if res.Improvement < 3.5 {
		t.Errorf("improvement %.2fx < 3.5x (paper ~4.2x)", res.Improvement)
	}
	if res.OptimizedAccounts < 38 || res.OptimizedAccounts > 52 {
		t.Errorf("accounts = %d, want in [38, 52] (paper 45)", res.OptimizedAccounts)
	}
	if res.ExactQueries > res.OptimizedQueries {
		t.Errorf("exact plan (%d) worse than FFD (%d)", res.ExactQueries, res.OptimizedQueries)
	}
	for _, sum := range res.ExampleBinSums {
		if sum > 10 {
			t.Errorf("example bin sum %d exceeds the 10-result cap", sum)
		}
	}
	t.Log("\n" + res.String())
}

func TestTable2QuickBands(t *testing.T) {
	c := quickCollected(t)
	res := Table2(c)
	t.Log("\n" + res.String())
	if f := res.SPS[3.0]; f < 0.78 || f > 0.95 {
		t.Errorf("P(SPS=3) = %.3f, want in [0.78, 0.95] (paper 0.8788)", f)
	}
	if f := res.SPS[1.0]; f < 0.03 || f > 0.16 {
		t.Errorf("P(SPS=1) = %.3f, want in [0.03, 0.16] (paper 0.0831)", f)
	}
	// IF is far more uniform than SPS: top bucket below 0.5, worst bucket
	// carrying real mass.
	if res.IF[3.0] > 0.5 {
		t.Errorf("P(IF=3) = %.3f too concentrated", res.IF[3.0])
	}
	if res.IF[1.0] < 0.08 {
		t.Errorf("P(IF=1) = %.3f, want >= 0.08 (paper 0.2084)", res.IF[1.0])
	}
}

func TestFig3QuickShape(t *testing.T) {
	c := quickCollected(t)
	res := Fig3(c)
	t.Log("\n" + res.String())
	if res.OverallSPS < 2.5 || res.OverallSPS > 3.0 {
		t.Errorf("overall SPS %.2f outside [2.5, 3.0] (paper 2.80)", res.OverallSPS)
	}
	if res.OverallIF < 1.8 || res.OverallIF > 2.7 {
		t.Errorf("overall IF %.2f outside [1.8, 2.7] (paper 2.22)", res.OverallIF)
	}
	if res.OverallIF >= res.OverallSPS {
		t.Error("IF overall should sit below SPS overall")
	}
	if res.AccelGapSPS <= 0 {
		t.Errorf("accelerated SPS gap %.1f%% should be positive (paper 12.07%%)", res.AccelGapSPS)
	}
	if res.AccelGapIF <= res.AccelGapSPS {
		t.Errorf("accelerated IF gap %.1f%% should exceed SPS gap %.1f%% (paper 34.98%% vs 12.07%%)",
			res.AccelGapIF, res.AccelGapSPS)
	}
}

func TestFig4QuickShape(t *testing.T) {
	c := quickCollected(t)
	res := Fig4(c)
	na := 0
	for _, cl := range catalog.Classes {
		for _, v := range res.SPS[cl] {
			if math.IsNaN(v) {
				na++
			}
		}
	}
	if na == 0 {
		t.Error("no NA cells in the spatial heatmap")
	}
	if !(res.SpatialSpread > res.TemporalSpread) {
		t.Errorf("spatial spread %.3f not above temporal %.3f (paper's key finding)",
			res.SpatialSpread, res.TemporalSpread)
	}
}

func TestFig5QuickShape(t *testing.T) {
	c := quickCollected(t)
	res := Fig5(c)
	if len(res.Rows) < 4 {
		t.Fatalf("only %d size rows", len(res.Rows))
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.MeanSPS <= last.MeanSPS {
		t.Errorf("smallest size SPS %.2f not above largest %.2f", first.MeanSPS, last.MeanSPS)
	}
	if first.MeanIF <= last.MeanIF {
		t.Errorf("smallest size IF %.2f not above largest %.2f", first.MeanIF, last.MeanIF)
	}
	t.Log("\n" + res.String())
}

func TestFig8QuickShape(t *testing.T) {
	c := quickCollected(t)
	res := Fig8(c)
	t.Log("\n" + res.String())
	if len(res.Sets.SPSvsIF) == 0 {
		t.Fatal("no correlations computed")
	}
	med := analysis.Median(res.Sets.SPSvsIF)
	if math.Abs(med) > 0.4 {
		t.Errorf("median r(SPS,IF) = %.2f, want near 0", med)
	}
	if res.FracAbsBelow50 < 0.5 {
		t.Errorf("|r|<0.5 fraction = %.2f, want >= 0.5 (paper 0.8764)", res.FracAbsBelow50)
	}
	if res.FracAbsBelow25 >= res.FracAbsBelow50 {
		t.Error("CDF fractions inconsistent")
	}
}

func TestFig9QuickShape(t *testing.T) {
	c := quickCollected(t)
	res := Fig9(c)
	t.Log("\n" + res.String())
	h := res.Histogram
	for _, d := range []float64{0.5, 1, 1.5, 2} {
		if h[d] > h[0] {
			t.Errorf("difference %.1f (%.3f) more common than 0 (%.3f)", d, h[d], h[0])
		}
	}
	if h[2.0] == 0 {
		t.Error("no complete contradictions observed (paper: 17.41%)")
	}
	if h[1.5]+h[2.0] < 0.05 {
		t.Errorf("contradiction mass %.3f too small (paper ~24%%)", h[1.5]+h[2.0])
	}
}

func TestFig10QuickShape(t *testing.T) {
	c := quickCollected(t)
	res := Fig10(c)
	t.Log("\n" + res.String())
	if res.SPS.N() == 0 || res.Price.N() == 0 {
		t.Fatal("missing change intervals")
	}
	if res.SPS.Quantile(0.5) >= res.Price.Quantile(0.5) {
		t.Errorf("SPS median interval %.1fh not below price %.1fh (paper: SPS updates most)",
			res.SPS.Quantile(0.5), res.Price.Quantile(0.5))
	}
	if res.IF.N() > 10 && res.Price.Quantile(0.5) >= res.IF.Quantile(0.5) {
		t.Errorf("price median %.1fh not below IF %.1fh (paper: IF updates least)",
			res.Price.Quantile(0.5), res.IF.Quantile(0.5))
	}
}

func TestExperiment54QuickShape(t *testing.T) {
	opt := DefaultExperiment54Options()
	opt.SampleFrac = 0.12
	opt.MaxPerCategory = 45
	res, err := Experiment54(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	by := res.Result.ByCategory
	hh, hl := by[experiment.CatHH], by[experiment.CatHL]
	mm, lh, ll := by[experiment.CatMM], by[experiment.CatLH], by[experiment.CatLL]

	// Paper's headline: high placement score -> every request fulfilled.
	if hh.NotFulfilled != 0 {
		t.Errorf("H-H not-fulfilled = %d, want 0 (paper 0%%)", hh.NotFulfilled)
	}
	if hl.NotFulfilledPct() > 8 {
		t.Errorf("H-L not-fulfilled = %.1f%%, want ~0%%", hl.NotFulfilledPct())
	}
	// Low placement score -> fulfillment failures dominate.
	if lh.NotFulfilledPct() < 25 {
		t.Errorf("L-H not-fulfilled = %.1f%%, want substantial (paper 58.18%%)", lh.NotFulfilledPct())
	}
	if ll.NotFulfilledPct() < 20 {
		t.Errorf("L-L not-fulfilled = %.1f%%, want substantial (paper 45.61%%)", ll.NotFulfilledPct())
	}
	if mm.NotFulfilledPct() >= lh.NotFulfilledPct() {
		t.Errorf("M-M not-fulfilled %.1f%% should sit below L-H %.1f%%", mm.NotFulfilledPct(), lh.NotFulfilledPct())
	}
	// Interruption: H-H is the most reliable.
	for _, other := range []experiment.Category{experiment.CatHL, experiment.CatLL} {
		if by[other].InterruptedPct() <= hh.InterruptedPct() {
			t.Errorf("%s interrupted %.1f%% not above H-H %.1f%%",
				other, by[other].InterruptedPct(), hh.InterruptedPct())
		}
	}
	// Figure 11a: H-H fills fast; some fills are sub-second; L-L is slow.
	hhLat := analysis.NewCDF(hh.FulfillLatenciesSec)
	if hhLat.FractionBelow(1) < 0.1 {
		t.Errorf("H-H <=1s fills = %.1f%%, want >= 10%% (paper 28.07%%)", hhLat.FractionBelow(1)*100)
	}
	if hhLat.Quantile(0.9) > 600 {
		t.Errorf("H-H p90 fill %.0fs, want <= 600s (paper: 90%% <= 135s)", hhLat.Quantile(0.9))
	}
	llLat := analysis.NewCDF(ll.FulfillLatenciesSec)
	if llLat.N() > 3 && llLat.Quantile(0.5) < hhLat.Quantile(0.5)*10 {
		t.Errorf("L-L median fill %.0fs not much slower than H-H %.0fs", llLat.Quantile(0.5), hhLat.Quantile(0.5))
	}
	// Figure 11b: when interrupted, H-L survives longer than L-H.
	hlIntr := analysis.NewCDF(hl.TimeToInterruptSec)
	lhIntr := analysis.NewCDF(lh.TimeToInterruptSec)
	if hlIntr.N() >= 5 && lhIntr.N() >= 5 && hlIntr.Quantile(0.5) <= lhIntr.Quantile(0.5) {
		t.Errorf("H-L median run %.0fs not above L-H %.0fs (paper 6872s vs 2859s)",
			hlIntr.Quantile(0.5), lhIntr.Quantile(0.5))
	}
}

func TestTable4QuickShape(t *testing.T) {
	opt := DefaultTable4Options()
	opt.CollectDays = 14
	opt.SampleFrac = 0.35
	res, err := Table4(opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	rf, _ := res.Get("RF")
	sps, _ := res.Get("SPS")
	ifm, _ := res.Get("IF")
	cs, _ := res.Get("CostSave")

	// The paper's finding: history (RF) beats every current-value
	// heuristic on both metrics.
	for _, m := range []MethodScore{sps, ifm, cs} {
		if rf.Accuracy <= m.Accuracy-0.03 {
			t.Errorf("RF accuracy %.2f not above %s %.2f", rf.Accuracy, m.Method, m.Accuracy)
		}
	}
	if rf.Accuracy < 0.5 {
		t.Errorf("RF accuracy %.2f too low (paper 0.73)", rf.Accuracy)
	}
	if res.TrainSize == 0 || res.TestSize == 0 {
		t.Error("empty split")
	}
}

func TestFig6QuickShape(t *testing.T) {
	res, err := Fig6(5, 12)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	if res.FracLess() > 0.05 {
		t.Errorf("composite < sum in %.1f%% of cases; should be rare exceptions (paper: 2 cases)",
			res.FracLess()*100)
	}
	if res.FracGreater() < 0.3 {
		t.Errorf("composite > sum in %.1f%%, want >= 30%% (paper 60.62%%)", res.FracGreater()*100)
	}
	if res.FracEqual() < 0.1 {
		t.Errorf("composite = sum in %.1f%%, want >= 10%% (paper 38.81%%)", res.FracEqual()*100)
	}
}

func TestFig7QuickShape(t *testing.T) {
	res, err := Fig7(6, 10)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + res.String())
	for _, fc := range Fig7Classes {
		m := res.Means[fc.Class]
		for i := 1; i < len(m); i++ {
			if m[i] > m[i-1]+0.15 {
				t.Errorf("class %s score rose with target capacity: %.2f -> %.2f", fc.Class, m[i-1], m[i])
			}
		}
	}
	dropP := res.Means[catalog.ClassP][0] - res.Means[catalog.ClassP][5]
	dropM := res.Means[catalog.ClassM][0] - res.Means[catalog.ClassM][5]
	if dropP <= dropM {
		t.Errorf("P drop %.2f not above M drop %.2f", dropP, dropM)
	}
	if res.Means[catalog.ClassI][5] < 2.2 {
		t.Errorf("I class at n=50 = %.2f, want >= 2.2 (paper 2.63)", res.Means[catalog.ClassI][5])
	}
}

// Guard: the archive keys the quick collection produced parse back.
func TestCollectedKeysWellFormed(t *testing.T) {
	c := quickCollected(t)
	for _, k := range c.DB.Keys(tsdb.KeyFilter{})[:50] {
		if _, err := tsdb.ParseSeriesKey(k.String()); err != nil {
			t.Fatalf("key %v does not round-trip: %v", k, err)
		}
	}
}
