// Package gcpsim simulates Google Cloud's Spot VM data surface for the
// paper's Section 7 multi-vendor extension.
//
// Google Cloud publishes only the *current* spot price, and only on its
// web portal — no history, no availability signal, no interruption
// statistics (the paper cites Kadupitige et al. [25], who had to build a
// statistical preemption model precisely because GCP exposes nothing).
// Spot prices on GCP are also far stickier than AWS's: they change at most
// once a month. The simulator reproduces that minimal surface.
package gcpsim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/simclock"
	"repro/internal/simrand"
)

// Vendor is the vendor tag used in multi-vendor archives.
const Vendor = "gcp"

// MachineType is one GCP machine type.
type MachineType struct {
	Name      string
	Family    string // e.g. "n2"
	VCPU      int
	MemoryGiB float64
	// OnDemandUSD is the hourly on-demand price in the baseline region.
	OnDemandUSD float64
	// GPU marks accelerator-attached types.
	GPU bool
}

var regions = []string{
	"us-central1", "us-east1", "us-west1", "europe-west1", "europe-west4",
	"asia-east1", "asia-northeast1", "australia-southeast1",
}

func machineCatalog() []MachineType {
	mk := func(family string, vcpus []int, perVCPUMem, perVCPUPrice float64, gpu bool) []MachineType {
		var out []MachineType
		for _, v := range vcpus {
			out = append(out, MachineType{
				Name:        fmt.Sprintf("%s-standard-%d", family, v),
				Family:      family,
				VCPU:        v,
				MemoryGiB:   float64(v) * perVCPUMem,
				OnDemandUSD: float64(v) * perVCPUPrice,
				GPU:         gpu,
			})
		}
		return out
	}
	var all []MachineType
	all = append(all, mk("e2", []int{2, 4, 8, 16, 32}, 4, 0.0335, false)...)
	all = append(all, mk("n2", []int{2, 4, 8, 16, 32, 48, 64, 80}, 4, 0.0485, false)...)
	all = append(all, mk("n2d", []int{2, 4, 8, 16, 32, 48, 64, 96}, 4, 0.0422, false)...)
	all = append(all, mk("c2", []int{4, 8, 16, 30, 60}, 4, 0.0522, false)...)
	all = append(all, mk("m1", []int{40, 80, 96}, 14.9, 0.0626, false)...)
	all = append(all, mk("a2-highgpu", []int{12, 24, 48, 96}, 7.08, 0.31, true)...)
	all = append(all, mk("g2", []int{4, 8, 12, 16, 24, 32, 48}, 4, 0.073, true)...)
	return all
}

type poolState struct {
	rng         *simrand.Rand
	priceLatent float64
	priceLast   time.Time
	pubFrac     float64
	nextReprice time.Time
	init        bool
}

// Cloud is the simulated GCP spot surface.
type Cloud struct {
	clk   *simclock.Clock
	root  *simrand.Rand
	types []MachineType
	byN   map[string]*MachineType
	pools map[[2]string]*poolState
}

// New builds the simulated GCP from a seed.
func New(clk *simclock.Clock, seed uint64) *Cloud {
	c := &Cloud{
		clk:   clk,
		root:  simrand.New(seed).Stream("gcp"),
		types: machineCatalog(),
		byN:   make(map[string]*MachineType),
		pools: make(map[[2]string]*poolState),
	}
	for i := range c.types {
		c.byN[c.types[i].Name] = &c.types[i]
	}
	return c
}

// MachineTypes returns the machine type catalog.
func (c *Cloud) MachineTypes() []MachineType { return c.types }

// Regions returns the region list.
func (c *Cloud) Regions() []string { return append([]string(nil), regions...) }

// MachineType returns a machine type by name.
func (c *Cloud) MachineType(name string) (MachineType, bool) {
	t, ok := c.byN[name]
	if !ok {
		return MachineType{}, false
	}
	return *t, true
}

const (
	// Spot prices reprice at most monthly, with a per-pool phase.
	repriceInterval = 30 * 24 * time.Hour
	priceTheta      = 1.0 / (45 * 24)
	priceBase       = 0.09 // GCP spot discounts reach 91%
	priceSpan       = 0.31
)

func (c *Cloud) pool(name, region string) (*poolState, error) {
	_, ok := c.byN[name]
	if !ok {
		return nil, fmt.Errorf("gcpsim: unknown machine type %q", name)
	}
	valid := false
	for _, r := range regions {
		if r == region {
			valid = true
			break
		}
	}
	if !valid {
		return nil, fmt.Errorf("gcpsim: unknown region %q", region)
	}
	k := [2]string{name, region}
	p, ok := c.pools[k]
	now := c.clk.Now()
	if !ok {
		rng := c.root.Stream("pool/" + name + "/" + region)
		p = &poolState{rng: rng}
		p.priceLatent = rng.NormFloat64()
		p.priceLast = now
		p.pubFrac = priceBase + priceSpan*logistic(p.priceLatent)
		p.init = true
		p.nextReprice = now.Add(time.Duration(rng.Float64() * float64(repriceInterval)))
		c.pools[k] = p
	}
	c.advance(p, now)
	return p, nil
}

func (c *Cloud) advance(p *poolState, now time.Time) {
	if now.After(p.priceLast) {
		dtH := now.Sub(p.priceLast).Hours()
		sigmaDiff := 1.0 * math.Sqrt(2*priceTheta)
		p.priceLatent = p.rng.OUStep(p.priceLatent, 0, priceTheta, sigmaDiff, dtH)
		p.priceLast = now
	}
	// Monthly repricing: the published fraction only moves on schedule.
	for !p.nextReprice.After(now) {
		p.pubFrac = priceBase + priceSpan*logistic(p.priceLatent)
		p.nextReprice = p.nextReprice.Add(repriceInterval)
	}
}

func logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

func regionPriceMult(region string) float64 {
	switch region {
	case "us-central1", "us-east1", "us-west1":
		return 1.0
	case "europe-west1", "europe-west4":
		return 1.08
	default:
		return 1.16
	}
}

// PortalPrice is one row of the pricing page.
type PortalPrice struct {
	Type     string
	Region   string
	SpotUSD  float64
	OnDemand float64
}

// PortalSnapshot scrapes the pricing page — the only access GCP offers
// (current values, whole page, no history).
func (c *Cloud) PortalSnapshot() ([]PortalPrice, error) {
	var out []PortalPrice
	for i := range c.types {
		t := &c.types[i]
		for _, region := range regions {
			p, err := c.pool(t.Name, region)
			if err != nil {
				return nil, err
			}
			od := t.OnDemandUSD * regionPriceMult(region)
			out = append(out, PortalPrice{
				Type: t.Name, Region: region,
				SpotUSD: od * p.pubFrac, OnDemand: od,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Region < out[j].Region
	})
	return out, nil
}
