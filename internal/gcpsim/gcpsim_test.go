package gcpsim

import (
	"testing"
	"time"

	"repro/internal/simclock"
)

func TestCatalogShape(t *testing.T) {
	c := New(simclock.NewAtEpoch(), 1)
	if len(c.MachineTypes()) < 30 {
		t.Errorf("only %d machine types", len(c.MachineTypes()))
	}
	if len(c.Regions()) != 8 {
		t.Errorf("regions = %d, want 8", len(c.Regions()))
	}
	gpu := 0
	for _, m := range c.MachineTypes() {
		if m.VCPU <= 0 || m.MemoryGiB <= 0 || m.OnDemandUSD <= 0 {
			t.Errorf("type %s has non-positive specs", m.Name)
		}
		if m.GPU {
			gpu++
		}
	}
	if gpu == 0 {
		t.Error("no GPU machine types")
	}
	if _, ok := c.MachineType("n2-standard-8"); !ok {
		t.Error("n2-standard-8 missing")
	}
	if _, ok := c.MachineType("z9-mega-1"); ok {
		t.Error("bogus type found")
	}
}

func TestPortalPricesBelowOnDemand(t *testing.T) {
	clk := simclock.NewAtEpoch()
	c := New(clk, 2)
	clk.RunFor(24 * time.Hour)
	entries, err := c.PortalSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := len(c.MachineTypes()) * len(c.Regions())
	if len(entries) != want {
		t.Fatalf("snapshot %d entries, want %d", len(entries), want)
	}
	for _, e := range entries {
		if e.SpotUSD <= 0 || e.SpotUSD >= e.OnDemand {
			t.Fatalf("spot %v not in (0, od=%v) for %s/%s", e.SpotUSD, e.OnDemand, e.Type, e.Region)
		}
		// GCP spot discounts are deep: 60-91%.
		if disc := 1 - e.SpotUSD/e.OnDemand; disc < 0.5 || disc > 0.95 {
			t.Fatalf("discount %.2f outside GCP's band for %s/%s", disc, e.Type, e.Region)
		}
	}
}

func TestPricesChangeAtMostMonthly(t *testing.T) {
	clk := simclock.NewAtEpoch()
	c := New(clk, 3)
	name, region := "n2-standard-8", "us-central1"
	var prices []float64
	for d := 0; d < 90; d++ {
		clk.RunFor(24 * time.Hour)
		p, err := c.pool(name, region)
		if err != nil {
			t.Fatal(err)
		}
		prices = append(prices, p.pubFrac)
	}
	changes := 0
	for i := 1; i < len(prices); i++ {
		if prices[i] != prices[i-1] {
			changes++
		}
	}
	if changes > 4 {
		t.Errorf("price changed %d times in 90 days; GCP reprices at most monthly", changes)
	}
}

func TestValidation(t *testing.T) {
	c := New(simclock.NewAtEpoch(), 4)
	if _, err := c.pool("bogus-type", "us-central1"); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := c.pool("n2-standard-8", "mars-central1"); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []PortalPrice {
		clk := simclock.NewAtEpoch()
		c := New(clk, 55)
		clk.RunFor(40 * 24 * time.Hour)
		out, err := c.PortalSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed gcp runs diverged at %d", i)
		}
	}
}
