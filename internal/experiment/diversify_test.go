package experiment

import (
	"fmt"
	"testing"

	"repro/internal/catalog"
)

func mkCase(family, size, region, az string) Case {
	return Case{Pool: catalog.Pool{Type: family + "." + size, Region: region, AZ: az}}
}

func TestDiversifySpreadsFamilies(t *testing.T) {
	// 12 candidates: 10 from one (family, region), 2 from others.
	var pool []Case
	for i := 0; i < 10; i++ {
		pool = append(pool, mkCase("m5", "xlarge", "us-east-1", fmt.Sprintf("us-east-1%c", 'a'+i%4)))
	}
	pool = append(pool, mkCase("c5", "xlarge", "us-east-1", "us-east-1a"))
	pool = append(pool, mkCase("m5", "xlarge", "eu-west-1", "eu-west-1a"))

	picked := diversify(pool, 3)
	if len(picked) != 3 {
		t.Fatalf("picked %d, want 3", len(picked))
	}
	seen := map[string]int{}
	for _, c := range picked {
		fam, _, _ := catalog.ParseTypeName(c.Pool.Type)
		seen[fam+"/"+c.Pool.Region]++
	}
	// With 3 distinct (family, region) groups available, the first pass
	// must pick one from each.
	if len(seen) != 3 {
		t.Errorf("picked from %d groups, want 3: %v", len(seen), seen)
	}
}

func TestDiversifyWidensWhenNeeded(t *testing.T) {
	// Only one (family, region) group exists: all picks must come from it.
	var pool []Case
	for i := 0; i < 6; i++ {
		pool = append(pool, mkCase("m5", "xlarge", "us-east-1", fmt.Sprintf("us-east-1%c", 'a'+i)))
	}
	picked := diversify(pool, 4)
	if len(picked) != 4 {
		t.Fatalf("picked %d, want 4 (widening passes)", len(picked))
	}
}

func TestDiversifyLimitAtLeastPool(t *testing.T) {
	pool := []Case{mkCase("m5", "xlarge", "us-east-1", "us-east-1a")}
	picked := diversify(pool, 5)
	if len(picked) != 1 {
		t.Fatalf("picked %d from pool of 1", len(picked))
	}
}

func TestDiversifyPreservesOrderWithinGroups(t *testing.T) {
	// The first candidate of each group must be the earliest in the input
	// order (the caller's shuffle + size-preference ordering is meaningful).
	pool := []Case{
		mkCase("m5", "large", "us-east-1", "us-east-1a"),
		mkCase("m5", "xlarge", "us-east-1", "us-east-1b"),
		mkCase("c5", "large", "us-east-1", "us-east-1a"),
	}
	picked := diversify(pool, 2)
	if picked[0].Pool.Type != "m5.large" {
		t.Errorf("first pick = %s, want m5.large (input order)", picked[0].Pool.Type)
	}
	if picked[1].Pool.Type != "c5.large" {
		t.Errorf("second pick = %s, want c5.large (other group first)", picked[1].Pool.Type)
	}
}
