package experiment

import (
	"repro/internal/catalog"
	"repro/internal/simrand"
)

// newSampler isolates the experiment's sampling stream from the cloud's.
func newSampler(seed uint64) *simrand.Rand {
	return simrand.New(seed).Stream("experiment-sampling")
}

// sizeRankOf orders candidate types by instance size for the paper's
// smaller-is-cheaper selection preference.
func sizeRankOf(cat *catalog.Catalog, typeName string) int {
	t, ok := cat.Type(typeName)
	if !ok {
		return 1 << 20
	}
	return catalog.SizeRank(t.Size)
}

// The three current-value heuristics of Table 4. Each predicts the case
// outcome from a single live signal, with the thresholds the paper
// describes: the placement-score mapping is given explicitly (3.0 ->
// NoInterrupt, 2.0 -> Interrupted, 1.0 -> NoFulfill); the interruption-free
// and cost-savings thresholds are "set empirically", reproduced here as the
// analogous monotone cuts.

// PredictBySPS predicts from the current spot placement score.
func PredictBySPS(sps float64) Outcome {
	switch {
	case sps >= 3:
		return OutcomeNoInterrupt
	case sps >= 2:
		return OutcomeInterrupted
	default:
		return OutcomeNoFulfill
	}
}

// PredictByIF predicts from the current interruption-free score.
func PredictByIF(ifScore float64) Outcome {
	switch {
	case ifScore >= 3:
		return OutcomeNoInterrupt
	case ifScore > 1:
		return OutcomeInterrupted
	default:
		return OutcomeNoFulfill
	}
}

// PredictByCostSave predicts from the current savings percentage: deeper
// discounts suggest a glut (stable), shallow discounts suggest pressure.
func PredictByCostSave(savingsPct float64) Outcome {
	switch {
	case savingsPct >= 66:
		return OutcomeNoInterrupt
	case savingsPct >= 56:
		return OutcomeInterrupted
	default:
		return OutcomeNoFulfill
	}
}
