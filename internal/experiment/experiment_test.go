package experiment

import (
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/simclock"
)

// runSmall executes a reduced experiment (few cases, short horizon) for
// unit-level checks.
func runSmall(t *testing.T, seed uint64, horizon time.Duration, maxPerCat int) *Result {
	t.Helper()
	cat := catalog.Sample(0.12)
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, seed, cloudsim.DefaultParams())
	// Let the world decorrelate from its initial conditions.
	clk.RunFor(48 * time.Hour)
	cfg := DefaultConfig()
	cfg.Horizon = horizon
	cfg.MaxPerCategory = maxPerCat
	cfg.Seed = seed
	res, err := Run(cloud, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCategoryString(t *testing.T) {
	want := map[Category]string{CatHH: "H-H", CatHL: "H-L", CatMM: "M-M", CatLH: "L-H", CatLL: "L-L"}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
	if OutcomeNoFulfill.String() != "NoFulfill" || OutcomeInterrupted.String() != "Interrupted" || OutcomeNoInterrupt.String() != "NoInterrupt" {
		t.Error("outcome names wrong")
	}
}

func TestCategorize(t *testing.T) {
	cases := []struct {
		sps, ifs float64
		want     Category
		ok       bool
	}{
		{3, 3, CatHH, true},
		{3, 1, CatHL, true},
		{2, 2, CatMM, true},
		{1, 3, CatLH, true},
		{1, 1, CatLL, true},
		{3, 2, 0, false},
		{2, 3, 0, false},
		{1, 2.5, 0, false},
	}
	for _, c := range cases {
		got, ok := categorize(c.sps, c.ifs)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("categorize(%v, %v) = %v, %v", c.sps, c.ifs, got, ok)
		}
	}
}

func TestStratifiedSampling(t *testing.T) {
	res := runSmall(t, 31, 2*time.Hour, 8)
	counts := map[Category]int{}
	for _, c := range res.Cases {
		counts[c.Category]++
	}
	// All five categories present and equal-sized (stratified
	// under-sampling at the rarest combination).
	first := -1
	for _, cc := range Categories {
		n := counts[cc]
		if n == 0 {
			t.Fatalf("category %s has no cases", cc)
		}
		if first == -1 {
			first = n
		}
		if n != first {
			t.Errorf("category %s has %d cases, others %d; sampling not stratified", cc, n, first)
		}
		if n > 8 {
			t.Errorf("category %s exceeds MaxPerCategory: %d", cc, n)
		}
	}
}

func TestOutcomesConsistent(t *testing.T) {
	res := runSmall(t, 32, 3*time.Hour, 10)
	for _, c := range res.Cases {
		switch c.Outcome {
		case OutcomeNoFulfill:
			if c.Fulfilled || c.Interrupted {
				t.Errorf("NoFulfill case has fulfilled=%v interrupted=%v", c.Fulfilled, c.Interrupted)
			}
		case OutcomeInterrupted:
			if !c.Fulfilled || !c.Interrupted {
				t.Errorf("Interrupted case has fulfilled=%v interrupted=%v", c.Fulfilled, c.Interrupted)
			}
			if c.TimeToIntr <= 0 {
				t.Error("Interrupted case without positive time-to-interrupt")
			}
		case OutcomeNoInterrupt:
			if !c.Fulfilled || c.Interrupted {
				t.Errorf("NoInterrupt case has fulfilled=%v interrupted=%v", c.Fulfilled, c.Interrupted)
			}
		}
		if c.Fulfilled && c.FulfillLatency < 0 {
			t.Error("negative fulfillment latency")
		}
		if c.Fulfilled && c.FulfillLatency > 3*time.Hour {
			t.Error("fulfillment after horizon recorded")
		}
	}
}

func TestCategoryStatsMatchCases(t *testing.T) {
	res := runSmall(t, 33, 2*time.Hour, 6)
	for _, cc := range Categories {
		st := res.ByCategory[cc]
		var total, notFul, intr int
		for _, c := range res.Cases {
			if c.Category != cc {
				continue
			}
			total++
			if !c.Fulfilled {
				notFul++
			}
			if c.Interrupted {
				intr++
			}
		}
		if st.Total != total || st.NotFulfilled != notFul || st.Interrupted != intr {
			t.Errorf("category %s stats %+v, recomputed %d/%d/%d", cc, st, total, notFul, intr)
		}
		if len(st.FulfillLatenciesSec) != total-notFul {
			t.Errorf("category %s latency count %d, want %d", cc, len(st.FulfillLatenciesSec), total-notFul)
		}
		if len(st.TimeToInterruptSec) != intr {
			t.Errorf("category %s interrupt-time count %d, want %d", cc, len(st.TimeToInterruptSec), intr)
		}
	}
}

func TestHighSPSFulfillsFast(t *testing.T) {
	res := runSmall(t, 34, 4*time.Hour, 25)
	hh := res.ByCategory[CatHH]
	if hh.NotFulfilled != 0 {
		t.Errorf("H-H not-fulfilled = %d, paper observes 0%%", hh.NotFulfilled)
	}
	lh := res.ByCategory[CatLH]
	ll := res.ByCategory[CatLL]
	if lh.NotFulfilled+ll.NotFulfilled == 0 {
		t.Error("low-SPS categories all fulfilled within 4h; scarcity not binding")
	}
	if len(hh.FulfillLatenciesSec) > 0 && len(ll.FulfillLatenciesSec) > 0 {
		hhMed := analysis.Median(hh.FulfillLatenciesSec)
		llMed := analysis.Median(ll.FulfillLatenciesSec)
		if hhMed >= llMed {
			t.Errorf("H-H median fill %.0fs not faster than L-L %.0fs", hhMed, llMed)
		}
	}
}

func TestFeaturesRequireArchive(t *testing.T) {
	res := runSmall(t, 35, time.Hour, 3)
	for _, c := range res.Cases {
		if c.Features != nil {
			t.Fatal("features present without an archive")
		}
	}
}

func TestRunValidation(t *testing.T) {
	cat := catalog.Compact(1)
	cloud := cloudsim.New(cat, simclock.NewAtEpoch(), 1, cloudsim.DefaultParams())
	cfg := DefaultConfig()
	cfg.Horizon = 0
	if _, err := Run(cloud, cfg); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestBaselinePredictors(t *testing.T) {
	if PredictBySPS(3) != OutcomeNoInterrupt || PredictBySPS(2) != OutcomeInterrupted || PredictBySPS(1) != OutcomeNoFulfill {
		t.Error("SPS heuristic mapping wrong (paper Section 5.5)")
	}
	if PredictByIF(3) != OutcomeNoInterrupt || PredictByIF(2) != OutcomeInterrupted || PredictByIF(1) != OutcomeNoFulfill {
		t.Error("IF heuristic mapping wrong")
	}
	// Cost-save cuts are monotone.
	if PredictByCostSave(80) != OutcomeNoInterrupt || PredictByCostSave(60) != OutcomeInterrupted || PredictByCostSave(40) != OutcomeNoFulfill {
		t.Error("cost-save heuristic mapping wrong")
	}
}

func TestDeterministicExperiment(t *testing.T) {
	a := runSmall(t, 36, time.Hour, 4)
	b := runSmall(t, 36, time.Hour, 4)
	if len(a.Cases) != len(b.Cases) {
		t.Fatalf("case counts differ: %d vs %d", len(a.Cases), len(b.Cases))
	}
	for i := range a.Cases {
		if a.Cases[i].Pool != b.Cases[i].Pool || a.Cases[i].Outcome != b.Cases[i].Outcome {
			t.Fatalf("case %d differs between same-seed runs", i)
		}
	}
}
