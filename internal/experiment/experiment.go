// Package experiment reproduces the paper's Section 5.4 real-world spot
// instance experiments against the simulated cloud.
//
// The protocol follows the paper exactly: pools are categorized by their
// current (published) spot placement score and interruption-free score into
// the H-H, H-L, M-M, L-H and L-L combinations (H/M/L = score 3.0 / 2.0 /
// 1.0), stratified under-sampling equalizes the category sizes at the
// rarest combination's count, one persistent spot request per case bids the
// on-demand price, status is observed for 24 hours, and each case yields a
// fulfillment latency (Figure 11a), a time-to-first-interruption
// (Figure 11b), and the Not-Fulfilled / Interrupted rates of Table 3. The
// per-case outcome labels (NoInterrupt / Interrupted / NoFulfill) with
// preceding-month history features feed the Table 4 prediction study.
package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/tsdb"
)

// Category is a (placement score, interruption-free score) combination.
type Category int

// The five score combinations of the paper's experiments.
const (
	CatHH Category = iota // SPS high, IF high
	CatHL                 // SPS high, IF low
	CatMM                 // both medium
	CatLH                 // SPS low, IF high
	CatLL                 // both low
)

// Categories lists the experiment categories in the paper's table order.
var Categories = []Category{CatHH, CatHL, CatMM, CatLH, CatLL}

// String returns the paper's label ("H-H", ...).
func (c Category) String() string {
	switch c {
	case CatHH:
		return "H-H"
	case CatHL:
		return "H-L"
	case CatMM:
		return "M-M"
	case CatLH:
		return "L-H"
	case CatLL:
		return "L-L"
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Outcome is the 3-class label of the Table 4 prediction problem.
type Outcome int

// Possible case outcomes.
const (
	OutcomeNoInterrupt Outcome = iota // fulfilled, ran the full day
	OutcomeInterrupted                // fulfilled, interrupted at least once
	OutcomeNoFulfill                  // never fulfilled within 24h
)

// NumOutcomes is the label count of the classification problem.
const NumOutcomes = 3

// String returns the paper's class name.
func (o Outcome) String() string {
	switch o {
	case OutcomeNoInterrupt:
		return "NoInterrupt"
	case OutcomeInterrupted:
		return "Interrupted"
	case OutcomeNoFulfill:
		return "NoFulfill"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Case is one experimental case: one pool observed for the horizon.
type Case struct {
	Pool     catalog.Pool
	Category Category

	// Signals at selection time.
	SPS     float64 // placement score, 1..3
	IF      float64 // interruption-free score, 1..3
	Savings float64 // advisor savings percent, 0..100

	// Observations.
	SubmittedAt    time.Time
	Fulfilled      bool
	FulfillLatency time.Duration // valid when Fulfilled
	Interrupted    bool
	TimeToIntr     time.Duration // from first fulfillment to first interruption
	Outcome        Outcome

	// Features is the preceding-month history feature vector (present when
	// the experiment was given an archive).
	Features []float64
}

// Config controls an experiment run.
type Config struct {
	// Horizon is the observation window per case (paper: 24h).
	Horizon time.Duration
	// PollInterval is the status recording cadence (paper: 5s). Outcome
	// timestamps are taken from the request event log; the poll exists to
	// mirror the protocol and bound event staleness.
	PollInterval time.Duration
	// MaxPerCategory caps cases per category before stratified
	// under-sampling (0 = no cap beyond the rarest category's count).
	MaxPerCategory int
	// Seed drives sampling.
	Seed uint64
	// Archive optionally provides the collected history: required for
	// history features, unused otherwise.
	Archive *tsdb.DB
	// FeatureWindow is the history window for features (paper: the
	// preceding month).
	FeatureWindow time.Duration
	// SelectionLag is the delay between categorizing pools and submitting
	// their requests. The paper assembled 503 cases from archived scores
	// under per-account query quotas before launching, so its categories
	// reflect somewhat stale data — exactly why some "L" pools fulfilled
	// within minutes (Figure 11a) while others never did (Table 3).
	SelectionLag time.Duration
	// PreferSmallSizes reproduces the paper's cost-driven bias: "smaller
	// and less expensive instance types were preferred where applicable."
	PreferSmallSizes bool
}

// DefaultConfig returns the paper's protocol settings.
func DefaultConfig() Config {
	return Config{
		Horizon:          24 * time.Hour,
		PollInterval:     5 * time.Second,
		MaxPerCategory:   101,
		FeatureWindow:    30 * 24 * time.Hour,
		SelectionLag:     8 * time.Hour,
		PreferSmallSizes: true,
	}
}

// CategoryStats aggregates Table 3 for one category.
type CategoryStats struct {
	Total        int
	NotFulfilled int
	Interrupted  int
	// FulfillLatenciesSec holds per-case fulfillment latencies (fulfilled
	// cases only), for Figure 11a.
	FulfillLatenciesSec []float64
	// TimeToInterruptSec holds per-case times from fulfillment to first
	// interruption (interrupted cases only), for Figure 11b.
	TimeToInterruptSec []float64
}

// NotFulfilledPct returns the Table 3 percentage.
func (s CategoryStats) NotFulfilledPct() float64 {
	if s.Total == 0 {
		return math.NaN()
	}
	return 100 * float64(s.NotFulfilled) / float64(s.Total)
}

// InterruptedPct returns the Table 3 percentage.
func (s CategoryStats) InterruptedPct() float64 {
	if s.Total == 0 {
		return math.NaN()
	}
	return 100 * float64(s.Interrupted) / float64(s.Total)
}

// Result is a completed experiment.
type Result struct {
	Cases      []Case
	ByCategory map[Category]CategoryStats
	StartedAt  time.Time
}

// FeatureNames documents the history feature vector layout.
var FeatureNames = []string{
	"sps_mean_30d", "sps_std_30d", "sps_min_30d", "sps_frac3_30d", "sps_frac1_30d", "sps_last",
	"if_mean_30d", "if_std_30d", "if_min_30d", "if_frac3_30d", "if_frac1_30d", "if_last",
	"savings_last",
}

// Run executes the experiment protocol on the cloud at its current
// simulation time. The clock is advanced by cfg.Horizon.
func Run(cloud *cloudsim.Cloud, cfg Config) (*Result, error) {
	if cfg.Horizon <= 0 || cfg.PollInterval <= 0 {
		return nil, fmt.Errorf("experiment: non-positive horizon or poll interval")
	}
	cat := cloud.Catalog()
	clk := cloud.Clock()
	start := clk.Now()

	// --- Selection: categorize every pool by its published signals. -----
	byCat := make(map[Category][]Case)
	for _, p := range cat.Pools() {
		units, err := cloud.PublishedAvailableUnits(p.Type, p.AZ)
		if err != nil {
			return nil, err
		}
		sps := float64(cloudsim.DiscreteScore(cloudsim.ContinuousScore(units), 3))
		adv, err := cloud.AdvisorEntryFor(p.Type, p.Region)
		if err != nil {
			return nil, err
		}
		ifScore := adv.Bucket.InterruptionFreeScore()
		cc, ok := categorize(sps, ifScore)
		if !ok {
			continue
		}
		byCat[cc] = append(byCat[cc], Case{
			Pool: p, Category: cc,
			SPS: sps, IF: ifScore, Savings: float64(adv.SavingsPct),
		})
	}

	// --- Stratified under-sampling at the rarest combination. -----------
	limit := math.MaxInt
	for _, cc := range Categories {
		if n := len(byCat[cc]); n < limit {
			limit = n
		}
	}
	if limit == 0 {
		return nil, fmt.Errorf("experiment: some category has no candidate pools (counts: %v)", catCounts(byCat))
	}
	if cfg.MaxPerCategory > 0 && limit > cfg.MaxPerCategory {
		limit = cfg.MaxPerCategory
	}
	rng := newSampler(cfg.Seed)
	var cases []Case
	for _, cc := range Categories {
		pool := byCat[cc]
		// Deterministic order before shuffling.
		sort.Slice(pool, func(i, j int) bool { return pool[i].Pool.String() < pool[j].Pool.String() })
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		if cfg.PreferSmallSizes {
			// Stable sort keeps the shuffle's order within each size, so
			// the pick is random among the smallest candidates.
			sort.SliceStable(pool, func(i, j int) bool {
				return sizeRankOf(cat, pool[i].Pool.Type) < sizeRankOf(cat, pool[j].Pool.Type)
			})
		}
		cases = append(cases, diversify(pool, limit)...)
	}

	// --- History features from the archive. -----------------------------
	if cfg.Archive != nil {
		for i := range cases {
			cases[i].Features = historyFeatures(cfg.Archive, cases[i], start, cfg.FeatureWindow)
		}
	}

	// --- Selection-to-launch lag. ----------------------------------------
	if cfg.SelectionLag > 0 {
		clk.RunFor(cfg.SelectionLag)
	}

	// --- Submit persistent requests and observe for the horizon. --------
	reqs := make([]*cloudsim.SpotRequest, len(cases))
	for i := range cases {
		od, ok := cat.OnDemandPrice(cases[i].Pool.Type, cases[i].Pool.Region)
		if !ok {
			return nil, fmt.Errorf("experiment: no on-demand price for %v", cases[i].Pool)
		}
		req, err := cloud.Submit(cloudsim.SpotRequestSpec{
			Type:       cases[i].Pool.Type,
			AZ:         cases[i].Pool.AZ,
			BidUSD:     od, // the paper bids the on-demand price [45]
			Persistent: true,
		})
		if err != nil {
			return nil, err
		}
		cases[i].SubmittedAt = clk.Now()
		reqs[i] = req
	}

	// The 5-second poll mirrors the paper's recording loop; request state
	// transitions fire on their own scheduled events while the clock walks
	// forward in poll-sized steps. Outcome timestamps come from the event
	// logs, which is how the paper reports sub-second fulfillments despite
	// the 5-second poll.
	for elapsed := time.Duration(0); elapsed < cfg.Horizon; elapsed += cfg.PollInterval {
		step := cfg.PollInterval
		if elapsed+step > cfg.Horizon {
			step = cfg.Horizon - elapsed
		}
		clk.RunFor(step)
	}

	// --- Harvest. --------------------------------------------------------
	res := &Result{StartedAt: start, ByCategory: make(map[Category]CategoryStats)}
	for i := range cases {
		req := reqs[i]
		req.Close()
		c := &cases[i]
		deadline := c.SubmittedAt.Add(cfg.Horizon)
		for _, f := range req.Fulfillments() {
			if !f.After(deadline) {
				c.Fulfilled = true
				c.FulfillLatency = f.Sub(c.SubmittedAt)
				break
			}
		}
		if c.Fulfilled {
			first := c.SubmittedAt.Add(c.FulfillLatency)
			for _, intr := range req.Interruptions() {
				if intr.After(first) && !intr.After(deadline) {
					c.Interrupted = true
					c.TimeToIntr = intr.Sub(first)
					break
				}
			}
		}
		switch {
		case !c.Fulfilled:
			c.Outcome = OutcomeNoFulfill
		case c.Interrupted:
			c.Outcome = OutcomeInterrupted
		default:
			c.Outcome = OutcomeNoInterrupt
		}

		st := res.ByCategory[c.Category]
		st.Total++
		if !c.Fulfilled {
			st.NotFulfilled++
		} else {
			st.FulfillLatenciesSec = append(st.FulfillLatenciesSec, c.FulfillLatency.Seconds())
		}
		if c.Interrupted {
			st.Interrupted++
			st.TimeToInterruptSec = append(st.TimeToInterruptSec, c.TimeToIntr.Seconds())
		}
		res.ByCategory[c.Category] = st
	}
	res.Cases = cases
	return res, nil
}

// diversify picks limit cases from the ordered candidates while spreading
// them across distinct (instance family, region) pairs — pools of one
// family in one region share capacity fate, and the paper's stratified
// sampling "tried to distribute the instance type and availability zone
// uniformly across all the candidates". Each widening pass allows one more
// case per (family, region) until the quota is met.
func diversify(pool []Case, limit int) []Case {
	if limit >= len(pool) {
		return pool
	}
	picked := make([]Case, 0, limit)
	used := make(map[string]int)
	taken := make([]bool, len(pool))
	for allowance := 1; len(picked) < limit; allowance++ {
		progress := false
		for i, c := range pool {
			if len(picked) == limit {
				break
			}
			if taken[i] {
				continue
			}
			family := c.Pool.Type
			if dot := strings.IndexByte(family, '.'); dot > 0 {
				family = family[:dot]
			}
			key := family + "/" + c.Pool.Region
			if used[key] >= allowance {
				continue
			}
			used[key]++
			taken[i] = true
			picked = append(picked, c)
			progress = true
		}
		if !progress && len(picked) < limit {
			break // cannot widen further (shouldn't happen: limit <= len)
		}
	}
	return picked
}

func catCounts(byCat map[Category][]Case) map[string]int {
	out := make(map[string]int)
	for _, cc := range Categories {
		out[cc.String()] = len(byCat[cc])
	}
	return out
}

// categorize maps the signal pair to a category; pools outside the paper's
// five combinations are not used.
func categorize(sps, ifScore float64) (Category, bool) {
	switch {
	case sps == 3 && ifScore == 3:
		return CatHH, true
	case sps == 3 && ifScore == 1:
		return CatHL, true
	case sps == 2 && ifScore == 2:
		return CatMM, true
	case sps == 1 && ifScore == 3:
		return CatLH, true
	case sps == 1 && ifScore == 1:
		return CatLL, true
	}
	return 0, false
}

// historyFeatures extracts the preceding-window statistics of the pool's
// placement-score and interruption-free series plus current savings.
func historyFeatures(db *tsdb.DB, c Case, now time.Time, window time.Duration) []float64 {
	spsKey := tsdb.SeriesKey{Dataset: tsdb.DatasetPlacementScore, Type: c.Pool.Type, Region: c.Pool.Region, AZ: c.Pool.AZ}
	ifKey := tsdb.SeriesKey{Dataset: tsdb.DatasetInterruptFree, Type: c.Pool.Type, Region: c.Pool.Region}
	from := now.Add(-window)
	step := window / 120 // 120 samples across the window
	feats := make([]float64, 0, len(FeatureNames))
	feats = append(feats, seriesStats(db, spsKey, from, now, step)...)
	feats = append(feats, seriesStats(db, ifKey, from, now, step)...)
	feats = append(feats, c.Savings)
	return feats
}

// seriesStats returns mean, std, min, frac(==3), frac(==1), last.
func seriesStats(db *tsdb.DB, k tsdb.SeriesKey, from, to time.Time, step time.Duration) []float64 {
	grid, _ := db.Grid(k, from, to, step)
	var sum, sumSq, minV float64
	var frac3, frac1 float64
	n := 0
	minV = math.NaN()
	last := math.NaN()
	for _, v := range grid {
		if math.IsNaN(v) {
			continue
		}
		sum += v
		sumSq += v * v
		if math.IsNaN(minV) || v < minV {
			minV = v
		}
		if v >= 3 {
			frac3++
		}
		if v <= 1 {
			frac1++
		}
		last = v
		n++
	}
	if n == 0 {
		// No history: neutral values keep the row usable.
		return []float64{2, 0, 2, 0, 0, 2}
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return []float64{mean, math.Sqrt(variance), minV, frac3 / float64(n), frac1 / float64(n), last}
}
