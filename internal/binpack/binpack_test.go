package binpack

import (
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/simrand"
)

func checkPacking(t *testing.T, items []Item, bins []Bin, capacity int) {
	t.Helper()
	count := map[Item]int{}
	for _, it := range items {
		count[it]++
	}
	for _, b := range bins {
		if b.Weight > capacity {
			t.Fatalf("bin over capacity: %d > %d", b.Weight, capacity)
		}
		sum := 0
		for _, it := range b.Items {
			count[it]--
			sum += it.Weight
		}
		if sum != b.Weight {
			t.Fatalf("bin weight %d != item sum %d", b.Weight, sum)
		}
		if len(b.Items) == 0 {
			t.Fatal("empty bin in packing")
		}
	}
	for it, n := range count {
		if n != 0 {
			t.Fatalf("item %v packed %d extra/missing times", it, -n)
		}
	}
}

func TestFFDFigure1Example(t *testing.T) {
	// The paper's p3.2xlarge example: 11 regions with AZ counts summing to
	// 23 pack into 3 queries of capacity 10.
	weights := []int{2, 2, 2, 1, 1, 2, 2, 2, 4, 2, 3}
	items := make([]Item, len(weights))
	for i, w := range weights {
		items[i] = Item{Label: string(rune('a' + i)), Weight: w}
	}
	bins, err := FirstFitDecreasing(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	checkPacking(t, items, bins, 10)
	if len(bins) != 3 {
		t.Errorf("FFD used %d bins, want 3 (paper Figure 1)", len(bins))
	}
	exact, err := Exact(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	checkPacking(t, items, exact, 10)
	if len(exact) != 3 {
		t.Errorf("Exact used %d bins, want 3", len(exact))
	}
}

func TestExactBeatsFFDWhenPossible(t *testing.T) {
	// Classic FFD-suboptimal instance: weights {6,5,5,4,4,3,3} capacity 10.
	// FFD: [6,4],[5,5],[4,3,3] = 3 bins; optimal is 3 too. Use a sharper
	// case: {5,5,4,4,3,3,3,3} capacity 10 -> optimal 3 (5+5, 4+3+3, 4+3+3),
	// FFD gives 3 as well. Construct a known FFD-failure:
	// {4,4,4,3,3,3,3,3,3} capacity 10: FFD -> [4,4],[4,3,3],[3,3,3],[3] = 4
	// bins; optimal: [4,3,3] x3 = 3 bins.
	items := []Item{}
	for i, w := range []int{4, 4, 4, 3, 3, 3, 3, 3, 3} {
		items = append(items, Item{Label: string(rune('a' + i)), Weight: w})
	}
	ffd, err := FirstFitDecreasing(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Exact(items, 10)
	if err != nil {
		t.Fatal(err)
	}
	checkPacking(t, items, exact, 10)
	if len(exact) != 3 {
		t.Errorf("Exact used %d bins, want 3", len(exact))
	}
	if len(ffd) < len(exact) {
		t.Errorf("FFD (%d) beat Exact (%d): impossible", len(ffd), len(exact))
	}
}

func TestValidation(t *testing.T) {
	if _, err := FirstFitDecreasing([]Item{{"a", 11}}, 10); err == nil {
		t.Error("oversized item accepted")
	}
	if _, err := FirstFitDecreasing([]Item{{"a", 0}}, 10); err == nil {
		t.Error("zero-weight item accepted")
	}
	if _, err := FirstFitDecreasing([]Item{{"a", 1}}, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := Exact([]Item{{"a", -2}}, 10); err == nil {
		t.Error("negative weight accepted by Exact")
	}
}

func TestEmptyItems(t *testing.T) {
	bins, err := FirstFitDecreasing(nil, 10)
	if err != nil || len(bins) != 0 {
		t.Errorf("empty FFD = %v, %v", bins, err)
	}
	bins, err = Exact(nil, 10)
	if err != nil || len(bins) != 0 {
		t.Errorf("empty Exact = %v, %v", bins, err)
	}
}

func TestLowerBound(t *testing.T) {
	items := []Item{{"a", 4}, {"b", 4}, {"c", 3}}
	if lb := LowerBound(items, 10); lb != 2 {
		t.Errorf("LowerBound = %d, want 2", lb)
	}
	if lb := LowerBound(nil, 10); lb != 0 {
		t.Errorf("LowerBound(nil) = %d, want 0", lb)
	}
}

func TestPackingPropertiesRandom(t *testing.T) {
	// Property-based check over random instances shaped like the planner's
	// (weights 1..6, up to 17 items, capacity 10): Exact is never worse
	// than FFD, never better than the lower bound, and both produce valid
	// packings.
	rng := simrand.New(1234)
	f := func(seed uint16) bool {
		r := rng.StreamN("case", int(seed))
		n := 1 + r.Intn(17)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Label: string(rune('a' + i)), Weight: 1 + r.Intn(6)}
		}
		ffd, err := FirstFitDecreasing(items, 10)
		if err != nil {
			return false
		}
		exact, err := Exact(items, 10)
		if err != nil {
			return false
		}
		checkPacking(t, items, ffd, 10)
		checkPacking(t, items, exact, 10)
		lb := LowerBound(items, 10)
		return len(exact) <= len(ffd) && len(exact) >= lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPlanScoreQueriesStandardCatalog(t *testing.T) {
	// The paper's headline optimization: 9,299 naive queries reduced to
	// about 2,226 (roughly 4.5x), needing ~45 accounts at 50 queries each.
	cat := catalog.Standard()
	plan, err := PlanScoreQueries(cat, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NaiveQueries != 9299 {
		t.Errorf("naive queries = %d, want 9299 (547 types x 17 regions)", plan.NaiveQueries)
	}
	n := len(plan.Queries)
	t.Logf("optimized queries: %d (paper: 2226), improvement %.2fx, accounts %d (paper: 45)",
		n, float64(plan.NaiveQueries)/float64(n), plan.AccountsNeeded(50))
	if n < 1900 || n > 2600 {
		t.Errorf("optimized plan has %d queries, want within [1900, 2600] (paper 2226)", n)
	}
	improvement := float64(plan.NaiveQueries) / float64(n)
	if improvement < 3.5 {
		t.Errorf("improvement %.2fx, want >= 3.5x (paper ~4.2x)", improvement)
	}
	accounts := plan.AccountsNeeded(50)
	if accounts < 38 || accounts > 52 {
		t.Errorf("accounts needed = %d, want within [38, 52] (paper 45)", accounts)
	}
	// Every query must respect the response cap and cover each type's
	// support set exactly once.
	covered := map[string]map[string]bool{}
	for _, q := range plan.Queries {
		if q.ExpectedScores > 10 {
			t.Fatalf("query for %s expects %d > 10 scores", q.InstanceType, q.ExpectedScores)
		}
		m := covered[q.InstanceType]
		if m == nil {
			m = map[string]bool{}
			covered[q.InstanceType] = m
		}
		for _, r := range q.Regions {
			if m[r] {
				t.Fatalf("region %s queried twice for %s", r, q.InstanceType)
			}
			m[r] = true
		}
	}
	for _, tp := range cat.Types() {
		want := len(cat.SupportedRegions(tp.Name))
		if got := len(covered[tp.Name]); got != want {
			t.Fatalf("type %s: %d regions planned, want %d", tp.Name, got, want)
		}
	}
}

func TestPlanExactNotWorseThanFFD(t *testing.T) {
	cat := catalog.Compact(4)
	ffd, err := PlanScoreQueries(cat, 10, false)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := PlanScoreQueries(cat, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Queries) > len(ffd.Queries) {
		t.Errorf("exact plan (%d) worse than FFD plan (%d)", len(exact.Queries), len(ffd.Queries))
	}
}

func TestAccountsNeeded(t *testing.T) {
	p := Plan{Queries: make([]PlannedQuery, 101)}
	if got := p.AccountsNeeded(50); got != 3 {
		t.Errorf("AccountsNeeded(50) = %d, want 3", got)
	}
	if got := p.AccountsNeeded(0); got != 0 {
		t.Errorf("AccountsNeeded(0) = %d, want 0", got)
	}
}
