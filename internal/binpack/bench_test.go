package binpack

import (
	"testing"

	"repro/internal/catalog"
)

func planItems() []Item {
	// A representative tier-0 instance: all 17 regions with their AZ
	// counts (63 total, the hardest instance the planner sees).
	cat := catalog.Standard()
	var items []Item
	for _, rc := range cat.SupportedRegions("m5.xlarge") {
		items = append(items, Item{Label: rc.Region, Weight: rc.AZCount})
	}
	return items
}

func BenchmarkFFD(b *testing.B) {
	items := planItems()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FirstFitDecreasing(items, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExact(b *testing.B) {
	items := planItems()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exact(items, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanFullCatalog(b *testing.B) {
	cat := catalog.Standard()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := PlanScoreQueries(cat, 10, false)
		if err != nil {
			b.Fatal(err)
		}
		if len(plan.Queries) == 0 {
			b.Fatal("empty plan")
		}
	}
}
