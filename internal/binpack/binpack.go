// Package binpack implements the bin-packing optimization behind SpotLake's
// placement-score query planner (paper Section 3.2, Figure 1).
//
// The planner must fetch per-AZ placement scores for every instance type,
// but one API query returns at most 10 scores. For each instance type the
// regions supporting it — each contributing its number of supporting AZs —
// are therefore packed into queries so that every query's total AZ count
// stays within the response cap. The paper solves this with Google
// OR-Tools' COIN-OR CBC mixed-integer solver; this package provides both a
// first-fit-decreasing heuristic and an exact branch-and-bound solver (the
// problem instances here are tiny: at most 17 items of weight <= 6 into
// bins of capacity 10, where exact search is instantaneous).
package binpack

import (
	"fmt"
	"sort"
)

// Item is one object to pack: a label (a region code in the query-planning
// use) and its integer weight (the region's supporting-AZ count).
type Item struct {
	Label  string
	Weight int
}

// Bin is one bin of a packing.
type Bin struct {
	Items  []Item
	Weight int
}

// validate rejects empty and oversized items.
func validate(items []Item, capacity int) error {
	if capacity <= 0 {
		return fmt.Errorf("binpack: capacity must be positive, got %d", capacity)
	}
	for _, it := range items {
		if it.Weight <= 0 {
			return fmt.Errorf("binpack: item %q has non-positive weight %d", it.Label, it.Weight)
		}
		if it.Weight > capacity {
			return fmt.Errorf("binpack: item %q weight %d exceeds capacity %d", it.Label, it.Weight, capacity)
		}
	}
	return nil
}

// LowerBound returns the L1 lower bound ceil(totalWeight / capacity).
func LowerBound(items []Item, capacity int) int {
	total := 0
	for _, it := range items {
		total += it.Weight
	}
	return (total + capacity - 1) / capacity
}

// sortDecreasing returns the items sorted by decreasing weight (stable by
// label so packings are deterministic).
func sortDecreasing(items []Item) []Item {
	s := append([]Item(nil), items...)
	sort.Slice(s, func(i, j int) bool {
		if s[i].Weight != s[j].Weight {
			return s[i].Weight > s[j].Weight
		}
		return s[i].Label < s[j].Label
	})
	return s
}

// FirstFitDecreasing packs items into bins of the given capacity with the
// classic FFD heuristic: sort by decreasing weight, place each item into the
// first bin it fits, opening a new bin when none fits. FFD uses at most
// 11/9 OPT + 6/9 bins.
func FirstFitDecreasing(items []Item, capacity int) ([]Bin, error) {
	if err := validate(items, capacity); err != nil {
		return nil, err
	}
	var bins []Bin
	for _, it := range sortDecreasing(items) {
		placed := false
		for b := range bins {
			if bins[b].Weight+it.Weight <= capacity {
				bins[b].Items = append(bins[b].Items, it)
				bins[b].Weight += it.Weight
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, Bin{Items: []Item{it}, Weight: it.Weight})
		}
	}
	return bins, nil
}

// Exact packs items into the minimum number of bins using branch and bound
// (the CBC-equivalent for this problem class). The FFD solution seeds the
// incumbent; search branches on the placement of each item (in decreasing
// weight order) into existing bins or one new bin, pruning on the L1 lower
// bound and on bin-symmetry (an item never opens a second bin with the same
// residual capacity as an existing empty-enough bin it skipped).
func Exact(items []Item, capacity int) ([]Bin, error) {
	ffd, err := FirstFitDecreasing(items, capacity)
	if err != nil {
		return nil, err
	}
	lb := LowerBound(items, capacity)
	if len(ffd) == lb {
		return ffd, nil // FFD already optimal
	}

	sorted := sortDecreasing(items)
	n := len(sorted)
	best := len(ffd)
	bestAssign := make([]int, n) // item index -> bin index under FFD
	{
		// Recover FFD's assignment for the incumbent.
		pos := map[string][]int{}
		for b, bin := range ffd {
			for _, it := range bin.Items {
				pos[fmt.Sprintf("%s/%d", it.Label, it.Weight)] = append(pos[fmt.Sprintf("%s/%d", it.Label, it.Weight)], b)
			}
		}
		for i, it := range sorted {
			k := fmt.Sprintf("%s/%d", it.Label, it.Weight)
			bestAssign[i] = pos[k][0]
			pos[k] = pos[k][1:]
		}
	}

	assign := make([]int, n)
	loads := make([]int, 0, n)

	var remaining int
	for _, it := range sorted {
		remaining += it.Weight
	}

	var dfs func(i, used, rem int)
	dfs = func(i, used, rem int) {
		if used >= best {
			return
		}
		// Lower bound on additional bins for the remaining weight: even if
		// every open bin were filled to capacity, we need at least this
		// many bins overall.
		free := 0
		for _, l := range loads[:used] {
			free += capacity - l
		}
		extra := 0
		if rem > free {
			extra = (rem - free + capacity - 1) / capacity
		}
		if used+extra >= best {
			return
		}
		if i == n {
			best = used
			copy(bestAssign, assign)
			return
		}
		w := sorted[i].Weight
		seen := make(map[int]bool, used+1)
		for b := 0; b < used; b++ {
			if loads[b]+w > capacity {
				continue
			}
			// Symmetry pruning: trying two bins with identical load is
			// redundant.
			if seen[loads[b]] {
				continue
			}
			seen[loads[b]] = true
			loads[b] += w
			assign[i] = b
			dfs(i+1, used, rem-w)
			loads[b] -= w
		}
		// Open a new bin (only meaningful if we haven't already tried an
		// empty one).
		if !seen[0] && used < best-1 || used == 0 {
			loads = append(loads[:used], w)
			assign[i] = used
			dfs(i+1, used+1, rem-w)
			loads = loads[:used]
		}
	}
	dfs(0, 0, remaining)

	nBins := 0
	for _, b := range bestAssign[:n] {
		if b+1 > nBins {
			nBins = b + 1
		}
	}
	bins := make([]Bin, nBins)
	for i, b := range bestAssign {
		bins[b].Items = append(bins[b].Items, sorted[i])
		bins[b].Weight += sorted[i].Weight
	}
	// Drop any empty bins (possible if incumbent indices were sparse).
	out := bins[:0]
	for _, b := range bins {
		if len(b.Items) > 0 {
			out = append(out, b)
		}
	}
	return out, nil
}
