package binpack

import (
	"fmt"

	"repro/internal/catalog"
)

// PlannedQuery is one optimized placement-score query: a single instance
// type with the regions packed together so that the per-AZ scores fit one
// response (paper Figure 1).
type PlannedQuery struct {
	InstanceType string
	Regions      []string
	// ExpectedScores is the total supporting-AZ count of the packed
	// regions, i.e. how many per-AZ scores the query yields.
	ExpectedScores int
}

// Plan is a full collection plan for the placement-score dataset.
type Plan struct {
	Queries []PlannedQuery
	// NaiveQueries is the unoptimized count: one query per (type, region)
	// pair, 547 x 17 = 9,299 for the standard catalog.
	NaiveQueries int
}

// AccountsNeeded returns how many cloud accounts the plan requires under a
// unique-query quota per account (paper: 2,226 queries / 50 per account =
// 45 accounts).
func (p Plan) AccountsNeeded(quotaPerAccount int) int {
	if quotaPerAccount <= 0 {
		return 0
	}
	return (len(p.Queries) + quotaPerAccount - 1) / quotaPerAccount
}

// PlanScoreQueries builds the optimized query plan for every instance type
// in the catalog. capacity is the vendor's response-size cap (10). When
// exact is true the branch-and-bound solver is used per type (the CBC
// substitute); otherwise first-fit-decreasing.
func PlanScoreQueries(cat *catalog.Catalog, capacity int, exact bool) (Plan, error) {
	// The naive plan scans every (type, region) combination — the paper's
	// 547 x 17 = 9,299 — because without the support matrix (which itself
	// must be discovered) every pair needs a probe.
	plan := Plan{NaiveQueries: cat.NumTypes() * cat.NumRegions()}
	for _, t := range cat.Types() {
		regions := cat.SupportedRegions(t.Name)
		items := make([]Item, 0, len(regions))
		for _, rc := range regions {
			items = append(items, Item{Label: rc.Region, Weight: rc.AZCount})
		}
		var bins []Bin
		var err error
		if exact {
			bins, err = Exact(items, capacity)
		} else {
			bins, err = FirstFitDecreasing(items, capacity)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("planning %s: %w", t.Name, err)
		}
		for _, b := range bins {
			q := PlannedQuery{InstanceType: t.Name, ExpectedScores: b.Weight}
			for _, it := range b.Items {
				q.Regions = append(q.Regions, it.Label)
			}
			plan.Queries = append(plan.Queries, q)
		}
	}
	return plan, nil
}
