package cloudsim

import (
	"testing"
	"time"

	"repro/internal/catalog"
)

// findPoolByRegime hunts for a pool whose (family, region) is currently in
// the wanted regime.
func findPoolByRegime(c *Cloud, cat *catalog.Catalog, want Regime) (catalog.Pool, bool) {
	for _, p := range cat.Pools() {
		tp, _ := cat.Type(p.Type)
		fr := c.famRegionState(tp.Family, p.Region)
		if fr.regime == want {
			return p, true
		}
	}
	return catalog.Pool{}, false
}

func TestRequestLifecycleHealthyPool(t *testing.T) {
	c, clk, cat := testCloud(21)
	pool, ok := findPoolByRegime(c, cat, Healthy)
	if !ok {
		t.Fatal("no healthy pool found")
	}
	od, _ := cat.OnDemandPrice(pool.Type, pool.Region)
	req, err := c.Submit(SpotRequestSpec{Type: pool.Type, AZ: pool.AZ, BidUSD: od, Persistent: false})
	if err != nil {
		t.Fatal(err)
	}
	if req.Status() != StatusPendingEvaluation {
		t.Errorf("initial status = %v", req.Status())
	}
	clk.RunFor(time.Hour)
	if req.Status() != StatusFulfilled {
		t.Errorf("healthy pool request not fulfilled after 1h: %v (%v)", req.Status(), req.HoldingReason())
	}
	if len(req.Fulfillments()) != 1 {
		t.Errorf("fulfillments = %d, want 1", len(req.Fulfillments()))
	}
	if req.Fulfillments()[0].Before(req.SubmittedAt()) {
		t.Error("fulfilled before submission")
	}
	req.Close()
}

func TestRequestHoldsOnScarcePool(t *testing.T) {
	c, clk, cat := testCloud(22)
	pool, ok := findPoolByRegime(c, cat, Scarce)
	if !ok {
		t.Skip("no scarce pool at t0 with this seed")
	}
	od, _ := cat.OnDemandPrice(pool.Type, pool.Region)
	req, err := c.Submit(SpotRequestSpec{Type: pool.Type, AZ: pool.AZ, BidUSD: od})
	if err != nil {
		t.Fatal(err)
	}
	clk.RunFor(10 * time.Minute)
	if req.Status() == StatusFulfilled {
		t.Skip("pool recovered immediately; acceptable but uninformative")
	}
	if req.Status() != StatusHolding {
		t.Errorf("status = %v, want holding", req.Status())
	}
	if req.HoldingReason() != HoldCapacity {
		t.Errorf("hold reason = %v, want %v", req.HoldingReason(), HoldCapacity)
	}
	req.Close()
}

func TestRequestRejectsBadSpec(t *testing.T) {
	c, _, cat := testCloud(23)
	pool := cat.Pools()[0]
	if _, err := c.Submit(SpotRequestSpec{Type: pool.Type, AZ: pool.AZ, BidUSD: 0}); err == nil {
		t.Error("zero bid accepted")
	}
	if _, err := c.Submit(SpotRequestSpec{Type: "nope.xlarge", AZ: pool.AZ, BidUSD: 1}); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestLowBidHoldsOnPrice(t *testing.T) {
	c, clk, cat := testCloud(24)
	pool, ok := findPoolByRegime(c, cat, Healthy)
	if !ok {
		t.Fatal("no healthy pool")
	}
	// Bid far below any possible spot price (spot >= ~24% of on-demand).
	od, _ := cat.OnDemandPrice(pool.Type, pool.Region)
	req, err := c.Submit(SpotRequestSpec{Type: pool.Type, AZ: pool.AZ, BidUSD: od * 0.01})
	if err != nil {
		t.Fatal(err)
	}
	clk.RunFor(time.Hour)
	if req.Status() != StatusHolding || req.HoldingReason() != HoldPrice {
		t.Errorf("status=%v reason=%v, want holding/price-too-low", req.Status(), req.HoldingReason())
	}
	req.Close()
}

func TestCancelTerminates(t *testing.T) {
	c, clk, cat := testCloud(25)
	pool := cat.Pools()[0]
	od, _ := cat.OnDemandPrice(pool.Type, pool.Region)
	req, err := c.Submit(SpotRequestSpec{Type: pool.Type, AZ: pool.AZ, BidUSD: od})
	if err != nil {
		t.Fatal(err)
	}
	req.Cancel()
	if req.Status() != StatusTerminal || req.TerminalReason() != TermCancelled {
		t.Errorf("after cancel: %v/%v", req.Status(), req.TerminalReason())
	}
	clk.RunFor(time.Hour)
	if len(req.Fulfillments()) != 0 {
		t.Error("cancelled request was fulfilled")
	}
	req.Cancel() // idempotent
}

func TestPersistentRequestReopensAfterInterruption(t *testing.T) {
	// Run many persistent requests on churny pools for a simulated day and
	// check that interrupted ones re-enter the pipeline.
	c, clk, cat := testCloud(26)
	var reqs []*SpotRequest
	for _, p := range cat.Pools() {
		tp, _ := cat.Type(p.Type)
		if tp.Class != catalog.ClassP && tp.Class != catalog.ClassG {
			continue
		}
		od, _ := cat.OnDemandPrice(p.Type, p.Region)
		r, err := c.Submit(SpotRequestSpec{Type: p.Type, AZ: p.AZ, BidUSD: od, Persistent: true})
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, r)
		if len(reqs) >= 60 {
			break
		}
	}
	clk.RunFor(24 * time.Hour)
	interrupted := 0
	refulfilled := 0
	for _, r := range reqs {
		if len(r.Interruptions()) > 0 {
			interrupted++
			if len(r.Fulfillments()) > len(r.Interruptions()) {
				refulfilled++
			}
			if r.Status() == StatusTerminal {
				t.Error("persistent request went terminal after interruption")
			}
		}
		r.Close()
	}
	if interrupted == 0 {
		t.Error("no interruptions among 60 accelerated-pool requests in 24h; hazard too low")
	}
	t.Logf("interrupted=%d refulfilled=%d of %d", interrupted, refulfilled, len(reqs))
}

func TestNonPersistentGoesTerminalOnInterruption(t *testing.T) {
	c, clk, cat := testCloud(27)
	var reqs []*SpotRequest
	for _, p := range cat.Pools() {
		tp, _ := cat.Type(p.Type)
		if !tp.Class.Accelerated() {
			continue
		}
		od, _ := cat.OnDemandPrice(p.Type, p.Region)
		r, err := c.Submit(SpotRequestSpec{Type: p.Type, AZ: p.AZ, BidUSD: od})
		if err != nil {
			t.Fatal(err)
		}
		reqs = append(reqs, r)
		if len(reqs) >= 80 {
			break
		}
	}
	clk.RunFor(48 * time.Hour)
	sawTerminal := false
	for _, r := range reqs {
		if len(r.Interruptions()) > 0 {
			if r.Status() != StatusTerminal {
				t.Errorf("interrupted non-persistent request status = %v", r.Status())
			}
			if r.TerminalReason() != TermInterrupted && r.TerminalReason() != TermOutbid {
				t.Errorf("terminal reason = %v", r.TerminalReason())
			}
			sawTerminal = true
		}
		r.Close()
	}
	if !sawTerminal {
		t.Error("no interruption observed in 48h across 80 accelerated pools")
	}
}

func TestEventLogIsOrdered(t *testing.T) {
	c, clk, cat := testCloud(28)
	pool := cat.Pools()[0]
	od, _ := cat.OnDemandPrice(pool.Type, pool.Region)
	req, _ := c.Submit(SpotRequestSpec{Type: pool.Type, AZ: pool.AZ, BidUSD: od, Persistent: true})
	clk.RunFor(12 * time.Hour)
	ev := req.Events()
	if len(ev) == 0 {
		t.Fatal("no events")
	}
	if ev[0].Status != StatusPendingEvaluation {
		t.Errorf("first event = %v, want pending-evaluation", ev[0].Status)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].At.Before(ev[i-1].At) {
			t.Error("event log out of order")
		}
	}
	req.Close()
}

func TestFulfillmentLatencyScalesWithHealth(t *testing.T) {
	// Requests on healthy pools must fill much faster than on constrained
	// ones (Figure 11a's ordering).
	c, clk, cat := testCloud(29)
	healthyLat := []float64{}
	constrainedLat := []float64{}
	for _, p := range cat.Pools() {
		tp, _ := cat.Type(p.Type)
		fr := c.famRegionState(tp.Family, p.Region)
		var bucket *[]float64
		switch fr.regime {
		case Healthy:
			bucket = &healthyLat
		case Constrained:
			bucket = &constrainedLat
		default:
			continue
		}
		if len(*bucket) >= 40 {
			continue
		}
		od, _ := cat.OnDemandPrice(p.Type, p.Region)
		start := clk.Now()
		req, err := c.Submit(SpotRequestSpec{Type: p.Type, AZ: p.AZ, BidUSD: od})
		if err != nil {
			t.Fatal(err)
		}
		clk.RunFor(2 * time.Hour)
		if len(req.Fulfillments()) > 0 {
			*bucket = append(*bucket, req.Fulfillments()[0].Sub(start).Seconds())
		}
		req.Close()
	}
	if len(healthyLat) < 10 {
		t.Skip("not enough healthy fulfillments sampled")
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	t.Logf("healthy mean fill %.1fs (n=%d), constrained mean fill %.1fs (n=%d)",
		mean(healthyLat), len(healthyLat), mean(constrainedLat), len(constrainedLat))
	if len(constrainedLat) >= 5 && mean(healthyLat) >= mean(constrainedLat) {
		t.Errorf("healthy fills (%.1fs) not faster than constrained (%.1fs)",
			mean(healthyLat), mean(constrainedLat))
	}
}
