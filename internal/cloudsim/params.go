package cloudsim

import (
	"time"

	"repro/internal/catalog"
)

// ClassParams are the per-instance-class knobs of the capacity model. They
// encode the paper's empirical class hierarchy: general-purpose classes are
// plentiful, accelerated-computing classes are scarce and churny
// (Section 5.1), and DL is an exception with high availability.
type ClassParams struct {
	// Semi-Markov regime chain: every pool cycles Healthy -> Constrained ->
	// {Healthy | Scarce} -> Constrained -> ... with exponential dwell times.
	DwellHealthy     time.Duration
	DwellConstrained time.Duration
	DwellScarce      time.Duration
	// PCS is the probability that a pool leaves Constrained downward into
	// Scarce rather than recovering to Healthy.
	PCS float64

	// Units is the pool capacity in xlarge-equivalents at full health for an
	// xlarge instance of this class. Larger sizes divide this (see
	// Params.SizeExponent).
	Units float64

	// ChurnMean shifts the stationary mean of the churn latent xi, which
	// drives the advisor interruption ratio and the interruption hazard.
	// Higher means churnier (worse interruption-free score).
	ChurnMean float64
}

// Params holds every calibration constant of the simulated cloud. The
// defaults reproduce the marginal statistics published in the paper
// (Table 2, Figures 3-11); see the calibration tests.
type Params struct {
	Class map[catalog.Class]ClassParams

	// Availability latent A(t): Ornstein-Uhlenbeck around a regime mean.
	MuHealthy, MuConstrained, MuScarce          float64
	SigmaHealthy, SigmaConstrained, SigmaScarce float64
	// ThetaPerHour is the OU mean-reversion rate (1/hours).
	ThetaPerHour float64

	// SizeExponent shrinks pool capacity for larger sizes:
	// units(type) = ClassUnits / sizeFactor^SizeExponent. It produces the
	// monotone decline of scores with instance size (Figure 5).
	SizeExponent float64

	// Placement score thresholds on the ratio availableUnits/targetCount:
	// ratio >= ScoreHi -> 3, ratio >= ScoreLo -> 2, else 1.
	ScoreHi, ScoreLo float64

	// Regional stress: a slow shared OU per (class, region) added to every
	// pool's availability latent. It creates the spatial diversity of
	// Figure 4 and correlates AZs within a region.
	StressAmp          float64
	StressThetaPerHour float64

	// Churn latent xi(t) per (type, region): slow OU with unit stationary
	// variance around the class ChurnMean.
	ChurnThetaPerHour float64

	// Advisor mapping: monthly interruption ratio r = MaxRatio *
	// logistic(xi). Bucket edges follow AWS's published 5/10/15/20% bands.
	AdvisorMaxRatio float64

	// Post-2017 pricing policy: spot price = onDemand * (PriceBase +
	// PriceSpan * logistic(priceLatent)), where priceLatent is a very slow
	// OU; the published price only moves when it drifts by more than
	// PublishDelta (relative), matching the low update frequency of
	// Figure 10.
	PriceThetaPerHour float64
	PriceBase         float64
	PriceSpan         float64
	PublishDelta      float64

	// Spot request fulfillment. At submission an instant fill succeeds with
	// probability min(InstantFillMax, InstantFillSlope*(ratio-ScoreHi))
	// where ratio is the live available-units/target ratio. Afterwards the
	// request fills as a Poisson process with hourly rate
	// min(FillRateMax, FillRateK*(ratio-FillMinRatio)), zero below
	// FillMinRatio, evaluated every EvalInterval.
	InstantFillMax   float64
	InstantFillSlope float64
	FillMinRatio     float64
	FillRateK        float64
	FillRateMax      float64
	EvalInterval     time.Duration

	// Interruption hazard (events per hour) for a running instance:
	// lambda = (HazardBase + HazardChurn*exp(HazardChurnExp*clamp(xi,±3))
	//        + HazardScarcity*clamp((FillMinRatio-ratio)/FillMinRatio, 0, 1)
	//        + regime term)
	//        * (1 + FreshBoost*exp(-age/FreshTau)).
	// The regime term adds HazardConstrained (or HazardScarce) while the
	// pool's family-region capacity is Constrained (Scarce): instances that
	// were squeezed into tight pools get reclaimed quickly. Together with
	// the fresh-instance boost this produces Figure 11b's early
	// interruption medians and the paper's observation that low-SPS pools
	// interrupt faster than low-IF pools.
	HazardBase        float64
	HazardChurn       float64
	HazardChurnExp    float64
	HazardScarcity    float64
	HazardConstrained float64
	HazardScarce      float64
	FreshBoost        float64
	FreshTau          time.Duration

	// Capacity shock reproducing the June 2, 2022 dip in Figure 3a: from
	// ShockStart for ShockDuration, pools of a ShockFraction of types get
	// ShockBias added to their availability latent.
	ShockStart    time.Time
	ShockDuration time.Duration
	ShockBias     float64
	ShockFraction float64
}

// DefaultParams returns the calibrated parameter set.
func DefaultParams() Params {
	day := 24 * time.Hour
	return Params{
		Class: map[catalog.Class]ClassParams{
			catalog.ClassT:   {DwellHealthy: 20 * day, DwellConstrained: 10 * time.Hour, DwellScarce: 60 * time.Hour, PCS: 0.22, Units: 48, ChurnMean: -1.55},
			catalog.ClassM:   {DwellHealthy: 16 * day, DwellConstrained: 10 * time.Hour, DwellScarce: 60 * time.Hour, PCS: 0.25, Units: 44, ChurnMean: -1.30},
			catalog.ClassA:   {DwellHealthy: 10 * day, DwellConstrained: 12 * time.Hour, DwellScarce: 54 * time.Hour, PCS: 0.28, Units: 30, ChurnMean: -0.95},
			catalog.ClassC:   {DwellHealthy: 15 * day, DwellConstrained: 10 * time.Hour, DwellScarce: 60 * time.Hour, PCS: 0.25, Units: 42, ChurnMean: -1.20},
			catalog.ClassR:   {DwellHealthy: 14 * day, DwellConstrained: 12 * time.Hour, DwellScarce: 58 * time.Hour, PCS: 0.27, Units: 38, ChurnMean: -1.20},
			catalog.ClassX:   {DwellHealthy: 10 * day, DwellConstrained: 14 * time.Hour, DwellScarce: 48 * time.Hour, PCS: 0.32, Units: 20, ChurnMean: -0.90},
			catalog.ClassZ:   {DwellHealthy: 10 * day, DwellConstrained: 16 * time.Hour, DwellScarce: 48 * time.Hour, PCS: 0.30, Units: 16, ChurnMean: -0.85},
			catalog.ClassP:   {DwellHealthy: 84 * time.Hour, DwellConstrained: 14 * time.Hour, DwellScarce: 48 * time.Hour, PCS: 0.50, Units: 5.5, ChurnMean: 0.65},
			catalog.ClassG:   {DwellHealthy: 4 * day, DwellConstrained: 14 * time.Hour, DwellScarce: 48 * time.Hour, PCS: 0.38, Units: 12, ChurnMean: 0.25},
			catalog.ClassDL:  {DwellHealthy: 18 * day, DwellConstrained: 10 * time.Hour, DwellScarce: 30 * time.Hour, PCS: 0.20, Units: 26, ChurnMean: -1.65},
			catalog.ClassInf: {DwellHealthy: 3 * day, DwellConstrained: 16 * time.Hour, DwellScarce: 48 * time.Hour, PCS: 0.42, Units: 9, ChurnMean: 0.30},
			catalog.ClassF:   {DwellHealthy: 4 * day, DwellConstrained: 16 * time.Hour, DwellScarce: 44 * time.Hour, PCS: 0.36, Units: 10, ChurnMean: -0.10},
			catalog.ClassVT:  {DwellHealthy: 6 * day, DwellConstrained: 14 * time.Hour, DwellScarce: 44 * time.Hour, PCS: 0.34, Units: 11, ChurnMean: -0.20},
			catalog.ClassI:   {DwellHealthy: 16 * day, DwellConstrained: 10 * time.Hour, DwellScarce: 54 * time.Hour, PCS: 0.23, Units: 40, ChurnMean: -1.20},
			catalog.ClassD:   {DwellHealthy: 12 * day, DwellConstrained: 12 * time.Hour, DwellScarce: 54 * time.Hour, PCS: 0.28, Units: 9, ChurnMean: -1.15},
			catalog.ClassH:   {DwellHealthy: 10 * day, DwellConstrained: 12 * time.Hour, DwellScarce: 50 * time.Hour, PCS: 0.28, Units: 10, ChurnMean: -0.95},
		},

		MuHealthy: 0.82, MuConstrained: 0.42, MuScarce: 0.055,
		SigmaHealthy: 0.10, SigmaConstrained: 0.09, SigmaScarce: 0.030,
		ThetaPerHour: 1.0 / 6,

		SizeExponent: 0.60,
		ScoreHi:      2.0,
		ScoreLo:      0.9,

		StressAmp:          0.10,
		StressThetaPerHour: 1.0 / 72,

		ChurnThetaPerHour: 1.0 / (20 * 24),
		AdvisorMaxRatio:   0.34,

		PriceThetaPerHour: 1.0 / (12 * 24),
		PriceBase:         0.24,
		PriceSpan:         0.26,
		PublishDelta:      0.03,

		InstantFillMax:   0.34,
		InstantFillSlope: 0.05,
		FillMinRatio:     1.05,
		FillRateK:        6.0,
		FillRateMax:      240,
		EvalInterval:     5 * time.Second,

		HazardBase:        0.0035,
		HazardChurn:       0.0038,
		HazardChurnExp:    0.9,
		HazardScarcity:    0.50,
		HazardConstrained: 0.040,
		HazardScarce:      0.12,
		FreshBoost:        16,
		FreshTau:          90 * time.Minute,

		ShockStart:    time.Date(2022, time.June, 2, 0, 0, 0, 0, time.UTC),
		ShockDuration: 60 * time.Hour,
		ShockBias:     -0.42,
		ShockFraction: 0.85,
	}
}

// Stationary returns the long-run time fractions (healthy, constrained,
// scarce) implied by the class's semi-Markov cycle. Exposed for calibration
// tests.
func (cp ClassParams) Stationary() (h, c, s float64) {
	// One renewal cycle starts when the pool enters Healthy. It then visits
	// Constrained a geometric number of times (success = exit to Healthy,
	// probability 1-PCS), with one Scarce visit after each failed exit.
	visitsC := 1 / (1 - cp.PCS)
	visitsS := visitsC - 1
	th := cp.DwellHealthy.Hours()
	tc := visitsC * cp.DwellConstrained.Hours()
	ts := visitsS * cp.DwellScarce.Hours()
	total := th + tc + ts
	return th / total, tc / total, ts / total
}
