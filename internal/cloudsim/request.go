package cloudsim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/catalog"
	"repro/internal/simclock"
	"repro/internal/simrand"
)

// RequestStatus is the spot request state machine of the paper's Table 1.
type RequestStatus int

// Spot request states.
const (
	// StatusPendingEvaluation: a valid spot request was submitted and is
	// being evaluated.
	StatusPendingEvaluation RequestStatus = iota
	// StatusHolding: some request constraint cannot currently be met
	// (price, location, resource availability, ...).
	StatusHolding
	// StatusFulfilled: all constraints are met and an instance is running.
	StatusFulfilled
	// StatusTerminal: the request is disabled (interruption, user cancel,
	// out-bid, ...). Persistent requests re-enter PendingEvaluation after
	// an interruption instead of going Terminal.
	StatusTerminal
)

// String returns the Table 1 state name.
func (s RequestStatus) String() string {
	switch s {
	case StatusPendingEvaluation:
		return "pending-evaluation"
	case StatusHolding:
		return "holding"
	case StatusFulfilled:
		return "fulfilled"
	case StatusTerminal:
		return "terminal"
	}
	return fmt.Sprintf("RequestStatus(%d)", int(s))
}

// HoldReason explains a Holding state.
type HoldReason string

// Hold reasons, mirroring the vendor's spot request status codes.
const (
	HoldCapacity HoldReason = "capacity-not-available"
	HoldPrice    HoldReason = "price-too-low"
)

// TerminalReason explains a Terminal state.
type TerminalReason string

// Terminal reasons.
const (
	TermInterrupted TerminalReason = "interrupted-capacity"
	TermOutbid      TerminalReason = "interrupted-outbid"
	TermCancelled   TerminalReason = "cancelled-by-user"
)

// SpotRequestSpec describes one spot instance request. The reproduction's
// experiments always request a single instance in a specific pool, as in
// Section 5.4 of the paper.
type SpotRequestSpec struct {
	Type string
	AZ   string
	// BidUSD is the maximum hourly price. The paper's experiments bid the
	// on-demand price [45].
	BidUSD float64
	// Persistent re-opens the request after an interruption, as the
	// paper's experiments do.
	Persistent bool
}

// RequestEvent is one state transition in a request's history.
type RequestEvent struct {
	At     time.Time
	Status RequestStatus
	Detail string
}

// SpotRequest is a live spot request handle.
type SpotRequest struct {
	c    *Cloud
	rng  *simrand.Rand
	id   int
	spec SpotRequestSpec
	t    catalog.InstanceType

	status     RequestStatus
	holdReason HoldReason
	termReason TerminalReason

	submittedAt    time.Time
	fulfillments   []time.Time
	interruptions  []time.Time
	events         []RequestEvent
	firstEval      bool
	pendingEvent   *simclock.Event
	closed         bool
	region         string
	lastIntrHazard float64 // for tests/inspection
}

// Submit opens a spot request. The request is evaluated asynchronously on
// the simulation clock, matching the vendor's asynchronous request model.
func (c *Cloud) Submit(spec SpotRequestSpec) (*SpotRequest, error) {
	t, region, err := c.resolve(spec.Type, spec.AZ)
	if err != nil {
		return nil, err
	}
	if spec.BidUSD <= 0 {
		return nil, fmt.Errorf("cloudsim: bid must be positive, got %v", spec.BidUSD)
	}
	c.nextReqID++
	r := &SpotRequest{
		c:           c,
		rng:         c.root.StreamN("request", c.nextReqID),
		id:          c.nextReqID,
		spec:        spec,
		t:           t,
		region:      region,
		status:      StatusPendingEvaluation,
		submittedAt: c.clk.Now(),
		firstEval:   true,
	}
	r.log(StatusPendingEvaluation, "submitted")
	// First evaluation lands within about a second, like the live API.
	delay := time.Duration(r.rng.Range(0.3, 0.9) * float64(time.Second))
	r.pendingEvent = c.clk.Schedule(c.clk.Now().Add(delay), r.evaluate)
	return r, nil
}

func (r *SpotRequest) log(st RequestStatus, detail string) {
	r.events = append(r.events, RequestEvent{At: r.c.clk.Now(), Status: st, Detail: detail})
}

// Status returns the current request state.
func (r *SpotRequest) Status() RequestStatus { return r.status }

// HoldingReason returns the reason while the request is Holding.
func (r *SpotRequest) HoldingReason() HoldReason { return r.holdReason }

// TerminalReason returns the reason once the request is Terminal.
func (r *SpotRequest) TerminalReason() TerminalReason { return r.termReason }

// Events returns the state transition history.
func (r *SpotRequest) Events() []RequestEvent { return r.events }

// Fulfillments returns the times at which the request was fulfilled.
func (r *SpotRequest) Fulfillments() []time.Time { return r.fulfillments }

// Interruptions returns the times at which a running instance of the
// request was interrupted.
func (r *SpotRequest) Interruptions() []time.Time { return r.interruptions }

// SubmittedAt returns the submission time.
func (r *SpotRequest) SubmittedAt() time.Time { return r.submittedAt }

// Close cancels any future evaluation of the request. A running instance is
// left as-is; Close is the experiment harness detaching, not a termination.
func (r *SpotRequest) Close() {
	r.closed = true
	if r.pendingEvent != nil {
		r.pendingEvent.Cancel()
		r.pendingEvent = nil
	}
}

// Cancel terminates the request (and any running instance) by user action.
func (r *SpotRequest) Cancel() {
	if r.status == StatusTerminal {
		return
	}
	if r.pendingEvent != nil {
		r.pendingEvent.Cancel()
		r.pendingEvent = nil
	}
	r.closed = true
	r.status = StatusTerminal
	r.termReason = TermCancelled
	r.log(StatusTerminal, string(TermCancelled))
}

// liveRatio returns the live available-units ratio for the request's pool
// (target count is always 1).
func (r *SpotRequest) liveRatio() float64 {
	units, err := r.c.LiveAvailableUnits(r.spec.Type, r.spec.AZ)
	if err != nil {
		return 0
	}
	return units
}

// evaluate is the vendor's periodic evaluation of a not-yet-fulfilled
// request.
func (r *SpotRequest) evaluate(now time.Time) {
	r.pendingEvent = nil
	if r.closed || r.status == StatusTerminal || r.status == StatusFulfilled {
		return
	}
	price, err := r.c.SpotPriceUSD(r.spec.Type, r.spec.AZ)
	if err != nil {
		// Pool vanished from the catalog: impossible by construction.
		panic(err)
	}
	if price > r.spec.BidUSD {
		r.hold(HoldPrice)
		r.scheduleEval(r.c.p.EvalInterval)
		return
	}
	ratio := r.liveRatio()
	p := r.c.p
	if ratio < p.FillMinRatio {
		r.firstEval = false
		r.hold(HoldCapacity)
		// Deep shortage cannot resolve within seconds; the vendor backs
		// off. Near the threshold it keeps the short cadence.
		backoff := p.EvalInterval
		if ratio < 0.6*p.FillMinRatio {
			backoff = 12 * p.EvalInterval
		}
		r.scheduleEval(backoff)
		return
	}
	if r.firstEval {
		r.firstEval = false
		pInstant := math.Min(p.InstantFillMax, p.InstantFillSlope*math.Max(0, ratio-p.ScoreHi))
		if r.rng.Bool(pInstant) {
			r.fulfill(now)
			return
		}
		r.status = StatusPendingEvaluation
		r.scheduleEval(p.EvalInterval)
		return
	}
	rate := math.Min(p.FillRateMax, p.FillRateK*(ratio-p.FillMinRatio))
	pFill := 1 - math.Exp(-rate*p.EvalInterval.Hours())
	if r.rng.Bool(pFill) {
		r.fulfill(now)
		return
	}
	r.hold(HoldCapacity)
	r.scheduleEval(p.EvalInterval)
}

func (r *SpotRequest) hold(reason HoldReason) {
	if r.status != StatusHolding || r.holdReason != reason {
		r.status = StatusHolding
		r.holdReason = reason
		r.log(StatusHolding, string(reason))
	}
}

func (r *SpotRequest) scheduleEval(after time.Duration) {
	r.pendingEvent = r.c.clk.ScheduleAfter(after, r.evaluate)
}

func (r *SpotRequest) fulfill(now time.Time) {
	r.status = StatusFulfilled
	r.holdReason = ""
	r.fulfillments = append(r.fulfillments, now)
	r.log(StatusFulfilled, "instance running")
	r.scheduleInterruptionCandidate()
}

// hazardPerHour computes the current interruption hazard of the running
// instance, including the fresh-instance boost: instances placed into
// marginal slots face elevated eviction risk right after fulfillment.
func (r *SpotRequest) hazardPerHour(now time.Time) float64 {
	p := r.c.p
	fr := r.c.famRegionState(r.t.Family, r.region)
	xi := clamp(fr.xi, -xiClamp, xiClamp)
	xi += sizeChurnSlope * math.Log2(math.Max(r.t.SizeFactor, 0.25))
	xi = clamp(xi, -xiClamp, xiClamp)
	ratio := r.liveRatio()
	scarcity := clamp((p.FillMinRatio-ratio)/p.FillMinRatio, 0, 1)
	h := p.HazardBase + p.HazardChurn*math.Exp(p.HazardChurnExp*xi) + p.HazardScarcity*scarcity
	switch fr.regime {
	case Constrained:
		h += p.HazardConstrained
	case Scarce:
		h += p.HazardScarce
	}
	if n := len(r.fulfillments); n > 0 && p.FreshBoost > 0 && p.FreshTau > 0 {
		age := now.Sub(r.fulfillments[n-1])
		h *= 1 + p.FreshBoost*math.Exp(-age.Hours()/p.FreshTau.Hours())
	}
	r.lastIntrHazard = h
	return h
}

// hazardMax bounds the hazard for thinning.
func (r *SpotRequest) hazardMax() float64 {
	p := r.c.p
	regimeMax := p.HazardConstrained
	if p.HazardScarce > regimeMax {
		regimeMax = p.HazardScarce
	}
	return (p.HazardBase + p.HazardChurn*math.Exp(p.HazardChurnExp*xiClamp) +
		p.HazardScarcity + regimeMax) * (1 + p.FreshBoost)
}

// scheduleInterruptionCandidate schedules the next candidate interruption
// instant via Lewis' thinning: candidates arrive at the maximum hazard rate
// and are accepted with probability hazard/max.
func (r *SpotRequest) scheduleInterruptionCandidate() {
	dtHours := r.rng.Exponential(1 / r.hazardMax())
	r.pendingEvent = r.c.clk.ScheduleAfter(time.Duration(dtHours*float64(time.Hour)), r.interruptionCandidate)
}

func (r *SpotRequest) interruptionCandidate(now time.Time) {
	r.pendingEvent = nil
	if r.closed || r.status != StatusFulfilled {
		return
	}
	// Out-bid check: the post-2017 price policy makes this rare, but the
	// mechanism exists (Table 1's "price outbid" terminal cause).
	price, err := r.c.SpotPriceUSD(r.spec.Type, r.spec.AZ)
	if err == nil && price > r.spec.BidUSD {
		r.interrupt(now, TermOutbid)
		return
	}
	if r.rng.Bool(r.hazardPerHour(now) / r.hazardMax()) {
		r.interrupt(now, TermInterrupted)
		return
	}
	r.scheduleInterruptionCandidate()
}

func (r *SpotRequest) interrupt(now time.Time, reason TerminalReason) {
	r.interruptions = append(r.interruptions, now)
	if r.spec.Persistent {
		// The paper's experiments use persistent requests: the request
		// re-enters evaluation shortly after the interruption.
		r.status = StatusPendingEvaluation
		r.holdReason = ""
		r.log(StatusPendingEvaluation, "re-opened after "+string(reason))
		r.firstEval = true
		r.scheduleEval(r.c.p.EvalInterval)
		return
	}
	r.status = StatusTerminal
	r.termReason = reason
	r.log(StatusTerminal, string(reason))
}
