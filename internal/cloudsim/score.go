package cloudsim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/catalog"
)

// UnitsOf returns the full-health capacity of one (type, AZ) pool in
// instances of that type. Larger sizes get fewer units (Figure 5's size
// effect): units = classUnits / sizeFactor^SizeExponent.
func (c *Cloud) UnitsOf(t catalog.InstanceType) float64 {
	cp := c.classParams(t.Class)
	sf := t.SizeFactor
	if sf < 0.25 {
		sf = 0.25
	}
	return cp.Units / math.Pow(sf, c.p.SizeExponent)
}

// LiveAvailableUnits returns the live (ground-truth) available capacity of
// the (type, AZ) pool in instances.
func (c *Cloud) LiveAvailableUnits(typeName, az string) (float64, error) {
	t, region, err := c.resolve(typeName, az)
	if err != nil {
		return 0, err
	}
	fr := c.famRegionState(t.Family, region)
	fa := c.famAZState(t.Family, az, fr)
	a := c.liveAvailability(fr, fa, c.clk.Now())
	return c.UnitsOf(t) * a * a, nil
}

// PublishedAvailableUnits returns the vendor-published (stale, noisy) view
// of the pool's available capacity, the basis of the placement score.
func (c *Cloud) PublishedAvailableUnits(typeName, az string) (float64, error) {
	t, region, err := c.resolve(typeName, az)
	if err != nil {
		return 0, err
	}
	fr := c.famRegionState(t.Family, region)
	fa := c.famAZState(t.Family, az, fr)
	return c.UnitsOf(t) * fa.pubA * fa.pubA, nil
}

// resolve validates and resolves a (type, AZ) pool.
func (c *Cloud) resolve(typeName, az string) (catalog.InstanceType, string, error) {
	t, ok := c.cat.Type(typeName)
	if !ok {
		return catalog.InstanceType{}, "", fmt.Errorf("cloudsim: unknown instance type %q", typeName)
	}
	region, ok := c.cat.RegionOfAZ(az)
	if !ok {
		return catalog.InstanceType{}, "", fmt.Errorf("cloudsim: unknown availability zone %q", az)
	}
	supported := false
	for _, s := range c.cat.SupportedAZs(typeName, region) {
		if s == az {
			supported = true
			break
		}
	}
	if !supported {
		return catalog.InstanceType{}, "", fmt.Errorf("cloudsim: type %s not offered in %s", typeName, az)
	}
	return t, region, nil
}

// ContinuousScore maps an available-units/target ratio to the continuous
// placement subscore in [1.0, 3.0+bonus]. The integer score a single-type
// query returns is floor of this value clamped to [1,3]; composite queries
// sum the continuous subscores (Figure 6's behavior: the composite score is
// bounded below by the sum of single scores).
func ContinuousScore(ratio float64) float64 {
	s := 1 + 2*clamp((ratio-scoreRampLo)/(scoreRampHi-scoreRampLo), 0, 1)
	s += scoreBonusMax * clamp((ratio-scoreRampHi)/(scoreBonusSat-scoreRampHi), 0, 1)
	return s
}

// DiscreteScore converts a continuous subscore sum to the integer the API
// returns, clamped to [1, max].
func DiscreteScore(sum float64, max int) int {
	v := int(math.Floor(sum))
	if v < 1 {
		v = 1
	}
	if v > max {
		v = max
	}
	return v
}

// ScoreRequest describes a placement-score computation: one or more
// instance types, one or more regions, the desired instance count, and
// whether to break results out per availability zone.
type ScoreRequest struct {
	Types          []string
	Regions        []string
	TargetCapacity int
	SingleAZ       bool
}

// ScoreEntry is one returned placement score. AZ is empty for region-level
// results.
type ScoreEntry struct {
	Region string
	AZ     string
	Score  int
	// Continuous is the internal continuous score the integer was derived
	// from; exposed for calibration and tests, not part of the vendor API.
	Continuous float64
}

// PlacementScores computes placement scores from the published availability
// snapshots. It applies no query quota and no result truncation — those are
// vendor API-surface constraints enforced by package awsapi.
func (c *Cloud) PlacementScores(req ScoreRequest) ([]ScoreEntry, error) {
	if req.TargetCapacity <= 0 {
		return nil, fmt.Errorf("cloudsim: target capacity must be positive, got %d", req.TargetCapacity)
	}
	if len(req.Types) == 0 {
		return nil, fmt.Errorf("cloudsim: no instance types in score request")
	}
	if len(req.Regions) == 0 {
		return nil, fmt.Errorf("cloudsim: no regions in score request")
	}
	var out []ScoreEntry
	maxScore := 10
	for _, region := range req.Regions {
		r, ok := c.cat.Region(region)
		if !ok {
			return nil, fmt.Errorf("cloudsim: unknown region %q", region)
		}
		if req.SingleAZ {
			for _, az := range r.AZs {
				sum, any := c.scoreForAZ(req.Types, region, az, req.TargetCapacity)
				if !any {
					continue
				}
				out = append(out, ScoreEntry{
					Region:     region,
					AZ:         az,
					Score:      DiscreteScore(sum, maxScore),
					Continuous: sum,
				})
			}
			continue
		}
		sum := 0.0
		any := false
		for _, typeName := range req.Types {
			units := c.publishedUnitsInRegion(typeName, region)
			if units < 0 {
				continue
			}
			any = true
			sum += ContinuousScore(units / float64(req.TargetCapacity))
		}
		if any {
			out = append(out, ScoreEntry{
				Region:     region,
				Score:      DiscreteScore(sum, maxScore),
				Continuous: sum,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Region != out[j].Region {
			return out[i].Region < out[j].Region
		}
		return out[i].AZ < out[j].AZ
	})
	return out, nil
}

// scoreForAZ sums continuous subscores across types for one AZ. The second
// return reports whether any queried type is offered in the AZ.
func (c *Cloud) scoreForAZ(types []string, region, az string, n int) (float64, bool) {
	sum := 0.0
	any := false
	for _, typeName := range types {
		t, ok := c.cat.Type(typeName)
		if !ok {
			continue
		}
		offered := false
		for _, s := range c.cat.SupportedAZs(typeName, region) {
			if s == az {
				offered = true
				break
			}
		}
		if !offered {
			continue
		}
		any = true
		fr := c.famRegionState(t.Family, region)
		fa := c.famAZState(t.Family, az, fr)
		units := c.UnitsOf(t) * fa.pubA * fa.pubA
		sum += ContinuousScore(units / float64(n))
	}
	return sum, any
}

// publishedUnitsInRegion sums the published available units of a type over
// all supporting AZs in the region. It returns -1 when the type is not
// offered in the region.
func (c *Cloud) publishedUnitsInRegion(typeName, region string) float64 {
	t, ok := c.cat.Type(typeName)
	if !ok {
		return -1
	}
	azs := c.cat.SupportedAZs(typeName, region)
	if len(azs) == 0 {
		return -1
	}
	fr := c.famRegionState(t.Family, region)
	units := 0.0
	for _, az := range azs {
		fa := c.famAZState(t.Family, az, fr)
		units += c.UnitsOf(t) * fa.pubA * fa.pubA
	}
	return units
}

// --- Advisor dataset -------------------------------------------------------

// AdvisorBucket labels the five interruption-frequency bands of the spot
// instance advisor.
type AdvisorBucket int

// Advisor interruption-frequency bands, in increasing interruption order.
const (
	BucketLT5 AdvisorBucket = iota // "<5%"
	Bucket5to10
	Bucket10to15
	Bucket15to20
	BucketGT20 // ">20%"
)

// String returns the band label as shown on the advisor website.
func (b AdvisorBucket) String() string {
	switch b {
	case BucketLT5:
		return "<5%"
	case Bucket5to10:
		return "5-10%"
	case Bucket10to15:
		return "10-15%"
	case Bucket15to20:
		return "15-20%"
	case BucketGT20:
		return ">20%"
	}
	return fmt.Sprintf("AdvisorBucket(%d)", int(b))
}

// InterruptionFreeScore converts the bucket to the paper's 1.0-3.0 score
// representation (Section 5: lowest interruption frequency -> 3.0, highest
// -> 1.0, steps of 0.5).
func (b AdvisorBucket) InterruptionFreeScore() float64 {
	return 3.0 - 0.5*float64(b)
}

// AdvisorBucketOf buckets a monthly interruption ratio.
func AdvisorBucketOf(ratio float64) int {
	switch {
	case ratio < 0.05:
		return int(BucketLT5)
	case ratio < 0.10:
		return int(Bucket5to10)
	case ratio < 0.15:
		return int(Bucket10to15)
	case ratio < 0.20:
		return int(Bucket15to20)
	default:
		return int(BucketGT20)
	}
}

// AdvisorEntry is one row of the spot instance advisor dataset: the
// interruption band and cost savings for an instance type in a region.
type AdvisorEntry struct {
	Type        string
	Region      string
	Bucket      AdvisorBucket
	SavingsPct  int       // percent saved vs on-demand, 0-100
	LastChanged time.Time // when the bucket last changed (internal, for tests)
}

// AdvisorEntryFor returns the advisor row of one (type, region).
func (c *Cloud) AdvisorEntryFor(typeName, region string) (AdvisorEntry, error) {
	t, ok := c.cat.Type(typeName)
	if !ok {
		return AdvisorEntry{}, fmt.Errorf("cloudsim: unknown instance type %q", typeName)
	}
	if !c.cat.Supports(typeName, region) {
		return AdvisorEntry{}, fmt.Errorf("cloudsim: type %s not offered in region %s", typeName, region)
	}
	fr := c.famRegionState(t.Family, region)
	bucket := c.advisorBucketForType(fr, t)
	savings := c.savingsPct(t, region)
	return AdvisorEntry{
		Type:        typeName,
		Region:      region,
		Bucket:      bucket,
		SavingsPct:  savings,
		LastChanged: fr.advChangedAt,
	}, nil
}

// advisorBucketForType applies the size-churn penalty on top of the
// family-region published ratio: larger sizes interrupt more (Figure 5).
func (c *Cloud) advisorBucketForType(fr *famRegion, t catalog.InstanceType) AdvisorBucket {
	ratio := c.p.AdvisorMaxRatio * logistic(logit(fr.advRatio/c.p.AdvisorMaxRatio)+sizeChurnSlope*math.Log2(math.Max(t.SizeFactor, 0.25)))
	return AdvisorBucket(AdvisorBucketOf(ratio))
}

func logit(p float64) float64 {
	p = clamp(p, 1e-9, 1-1e-9)
	return math.Log(p / (1 - p))
}

// savingsPct computes the advisor's "savings over on-demand" column from
// the current average published spot price across the region's AZs.
func (c *Cloud) savingsPct(t catalog.InstanceType, region string) int {
	azs := c.cat.SupportedAZs(t.Name, region)
	if len(azs) == 0 {
		return 0
	}
	fr := c.famRegionState(t.Family, region)
	sum := 0.0
	for _, az := range azs {
		fa := c.famAZState(t.Family, az, fr)
		c.advancePrice(fa)
		sum += fa.pubFrac
	}
	frac := sum / float64(len(azs))
	pct := int(math.Round((1 - frac) * 100))
	if pct < 0 {
		pct = 0
	}
	if pct > 100 {
		pct = 100
	}
	return pct
}

// AdvisorSnapshot returns the advisor dataset for every supported
// (type, region) pair, like the website's single JSON document.
func (c *Cloud) AdvisorSnapshot() []AdvisorEntry {
	var out []AdvisorEntry
	for _, t := range c.cat.Types() {
		for _, rc := range c.cat.SupportedRegions(t.Name) {
			e, err := c.AdvisorEntryFor(t.Name, rc.Region)
			if err != nil {
				continue
			}
			out = append(out, e)
		}
	}
	return out
}

// --- Spot price ------------------------------------------------------------

// advancePrice advances the price latent and republishes the spot price
// fraction when it has drifted beyond the publication threshold. Price
// evolution materializes at observation instants; with the paper's
// 10-minute collection cadence this matches the archive's resolution.
func (c *Cloud) advancePrice(fa *famAZ) {
	now := c.clk.Now()
	if now.After(fa.priceLast) {
		dtH := now.Sub(fa.priceLast).Hours()
		theta := c.p.PriceThetaPerHour
		sigmaDiff := 1.0 * math.Sqrt(2*theta) // unit stationary variance
		fa.priceLatent = fa.rng.OUStep(fa.priceLatent, 0, theta, sigmaDiff, dtH)
		fa.priceLast = now
	}
	frac := c.p.PriceBase + c.p.PriceSpan*logistic(1.2*fa.priceLatent)
	if !fa.priceInit || math.Abs(frac-fa.pubFrac) > c.p.PublishDelta {
		fa.pubFrac = frac
		fa.priceInit = true
		fa.priceHist = append(fa.priceHist, FracPoint{At: now, Frac: frac})
		// Enforce the vendor's 90-day retention.
		cutoff := now.Add(-priceHistoryRetention)
		trim := 0
		for trim < len(fa.priceHist)-1 && fa.priceHist[trim].At.Before(cutoff) {
			trim++
		}
		if trim > 0 {
			fa.priceHist = append(fa.priceHist[:0], fa.priceHist[trim:]...)
		}
	}
}

// SpotPriceUSD returns the current published spot price of the pool.
func (c *Cloud) SpotPriceUSD(typeName, az string) (float64, error) {
	t, region, err := c.resolve(typeName, az)
	if err != nil {
		return 0, err
	}
	fr := c.famRegionState(t.Family, region)
	fa := c.famAZState(t.Family, az, fr)
	c.advancePrice(fa)
	od, _ := c.cat.OnDemandPrice(typeName, region)
	return od * fa.pubFrac, nil
}

// PricePoint is one published spot price change.
type PricePoint struct {
	At       time.Time
	PriceUSD float64
}

// PriceHistory returns the published price changes of a pool within
// [from, to], oldest first, subject to the 90-day retention window.
func (c *Cloud) PriceHistory(typeName, az string, from, to time.Time) ([]PricePoint, error) {
	t, region, err := c.resolve(typeName, az)
	if err != nil {
		return nil, err
	}
	fr := c.famRegionState(t.Family, region)
	fa := c.famAZState(t.Family, az, fr)
	c.advancePrice(fa)
	od, _ := c.cat.OnDemandPrice(typeName, region)
	var out []PricePoint
	for _, fp := range fa.priceHist {
		if fp.At.Before(from) || fp.At.After(to) {
			continue
		}
		out = append(out, PricePoint{At: fp.At, PriceUSD: od * fp.Frac})
	}
	return out, nil
}
