package cloudsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/simclock"
)

// TestPublishedLagsLive verifies the vendor-snapshot mechanism: the
// published availability diverges from live state between refreshes and
// matches it (up to noise) on average. This staleness is a load-bearing
// design element — it produces Figure 10's update cadence and Table 3's
// score/reality mismatches.
func TestPublishedLagsLive(t *testing.T) {
	c, clk, cat := testCloud(41)
	pool := cat.Pools()[0]

	sameCount, total := 0, 0
	var lastPub float64
	pubChanges := 0
	for i := 0; i < 24*14; i++ { // hourly for 14 days
		clk.RunFor(time.Hour)
		live, err := c.LiveAvailableUnits(pool.Type, pool.AZ)
		if err != nil {
			t.Fatal(err)
		}
		pub, err := c.PublishedAvailableUnits(pool.Type, pool.AZ)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && pub != lastPub {
			pubChanges++
		}
		lastPub = pub
		if math.Abs(live-pub) < 1e-9 {
			sameCount++
		}
		total++
	}
	// The published value holds still between refreshes, so it changes far
	// less often than the live value moves.
	if pubChanges > total/2 {
		t.Errorf("published value changed %d/%d samples; snapshots should be sticky", pubChanges, total)
	}
	if pubChanges == 0 {
		t.Error("published value never refreshed in 14 days")
	}
	// And it is a noisy snapshot: exact equality with live state should be
	// rare (the live OU moves every hour).
	if sameCount > total/4 {
		t.Errorf("published == live in %d/%d samples; staleness mechanism inert", sameCount, total)
	}
}

// TestAdvisorChangesOnlyDaily: the advisor's published bucket may only move
// at its refresh cadence.
func TestAdvisorChangesOnlyDaily(t *testing.T) {
	c, clk, cat := testCloud(42)
	tp := cat.Types()[0]
	region := cat.SupportedRegions(tp.Name)[0].Region

	var prev AdvisorBucket
	changes := []time.Time{}
	for i := 0; i < 24*30; i++ { // hourly for 30 days
		clk.RunFor(time.Hour)
		e, err := c.AdvisorEntryFor(tp.Name, region)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && e.Bucket != prev {
			changes = append(changes, clk.Now())
		}
		prev = e.Bucket
	}
	for i := 1; i < len(changes); i++ {
		if gap := changes[i].Sub(changes[i-1]); gap < 23*time.Hour {
			t.Errorf("advisor bucket changed %v apart; refresh is daily", gap)
		}
	}
}

// TestHazardIncreasesWithChurn: pools with higher churn latents interrupt
// more — the Table 3 column ordering depends on it.
func TestHazardIncreasesWithChurn(t *testing.T) {
	cat := catalog.Sample(0.2)
	clk := simclock.NewAtEpoch()
	c := New(cat, clk, 43, DefaultParams())
	clk.RunFor(24 * time.Hour)

	// Partition pools by advisor bucket, run persistent requests on both
	// groups, compare interruption frequency.
	var calm, churny []catalog.Pool
	for _, p := range cat.Pools() {
		e, err := c.AdvisorEntryFor(p.Type, p.Region)
		if err != nil {
			t.Fatal(err)
		}
		units, _ := c.LiveAvailableUnits(p.Type, p.AZ)
		if units < 3 { // only compare fulfillable pools
			continue
		}
		switch {
		case e.Bucket == BucketLT5 && len(calm) < 50:
			calm = append(calm, p)
		case e.Bucket == BucketGT20 && len(churny) < 50:
			churny = append(churny, p)
		}
	}
	if len(calm) < 15 || len(churny) < 15 {
		t.Skipf("not enough pools in both groups (%d calm, %d churny)", len(calm), len(churny))
	}
	runGroup := func(pools []catalog.Pool) (interrupted int) {
		var reqs []*SpotRequest
		for _, p := range pools {
			od, _ := cat.OnDemandPrice(p.Type, p.Region)
			r, err := c.Submit(SpotRequestSpec{Type: p.Type, AZ: p.AZ, BidUSD: od, Persistent: true})
			if err != nil {
				t.Fatal(err)
			}
			reqs = append(reqs, r)
		}
		clk.RunFor(24 * time.Hour)
		for _, r := range reqs {
			if len(r.Interruptions()) > 0 {
				interrupted++
			}
			r.Close()
		}
		return interrupted
	}
	calmIntr := runGroup(calm)
	churnyIntr := runGroup(churny)
	calmRate := float64(calmIntr) / float64(len(calm))
	churnyRate := float64(churnyIntr) / float64(len(churny))
	t.Logf("24h interruption rate: calm %.2f (n=%d) vs churny %.2f (n=%d)",
		calmRate, len(calm), churnyRate, len(churny))
	if churnyRate <= calmRate {
		t.Errorf("churny pools (%.2f) should interrupt more than calm pools (%.2f)", churnyRate, calmRate)
	}
}

// TestFreshBoostFrontLoadsInterruptions: with the boost, interruptions of
// fresh instances cluster early; removing it spreads them out.
func TestFreshBoostFrontLoadsInterruptions(t *testing.T) {
	medianTimeToIntr := func(boost float64) float64 {
		cat := catalog.Sample(0.2)
		clk := simclock.NewAtEpoch()
		p := DefaultParams()
		p.FreshBoost = boost
		c := New(cat, clk, 44, p)
		clk.RunFor(24 * time.Hour)
		var times []float64
		var reqs []*SpotRequest
		for _, pool := range cat.Pools() {
			tp, _ := cat.Type(pool.Type)
			if !tp.Class.Accelerated() {
				continue
			}
			od, _ := cat.OnDemandPrice(pool.Type, pool.Region)
			r, err := c.Submit(SpotRequestSpec{Type: pool.Type, AZ: pool.AZ, BidUSD: od, Persistent: true})
			if err != nil {
				t.Fatal(err)
			}
			reqs = append(reqs, r)
			if len(reqs) >= 120 {
				break
			}
		}
		clk.RunFor(24 * time.Hour)
		for _, r := range reqs {
			if len(r.Fulfillments()) > 0 && len(r.Interruptions()) > 0 {
				d := r.Interruptions()[0].Sub(r.Fulfillments()[0])
				if d > 0 {
					times = append(times, d.Seconds())
				}
			}
			r.Close()
		}
		if len(times) < 8 {
			t.Skipf("only %d interruptions observed", len(times))
		}
		// Median.
		for i := 1; i < len(times); i++ {
			for j := i; j > 0 && times[j] < times[j-1]; j-- {
				times[j], times[j-1] = times[j-1], times[j]
			}
		}
		return times[len(times)/2]
	}
	with := medianTimeToIntr(DefaultParams().FreshBoost)
	without := medianTimeToIntr(0)
	t.Logf("median time-to-interrupt: %.0fs with boost, %.0fs without", with, without)
	if with >= without {
		t.Errorf("fresh boost should front-load interruptions: %.0fs vs %.0fs", with, without)
	}
}
