package cloudsim

import (
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/simclock"
)

func BenchmarkPlacementScoresSingleType(b *testing.B) {
	cat := catalog.Compact(3)
	clk := simclock.NewAtEpoch()
	c := New(cat, clk, 1, DefaultParams())
	tn := cat.Types()[0].Name
	var regions []string
	for _, rc := range cat.SupportedRegions(tn) {
		regions = append(regions, rc.Region)
	}
	req := ScoreRequest{Types: []string{tn}, Regions: regions, TargetCapacity: 1, SingleAZ: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.RunFor(time.Second)
		if _, err := c.PlacementScores(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdvisorSnapshot(b *testing.B) {
	cat := catalog.Compact(3)
	clk := simclock.NewAtEpoch()
	c := New(cat, clk, 2, DefaultParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.RunFor(time.Second)
		if got := c.AdvisorSnapshot(); len(got) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

func BenchmarkPoolAdvancementDay(b *testing.B) {
	// The collector's hot path: advance every pool by a day's worth of
	// 10-minute observations.
	cat := catalog.Compact(2)
	clk := simclock.NewAtEpoch()
	c := New(cat, clk, 3, DefaultParams())
	pools := cat.Pools()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clk.RunFor(10 * time.Minute)
		for _, p := range pools {
			if _, err := c.PublishedAvailableUnits(p.Type, p.AZ); err != nil {
				b.Fatal(err)
			}
		}
	}
}
