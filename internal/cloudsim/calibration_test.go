package cloudsim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/simclock"
)

// sampleScores runs the cloud for days simulated days, sampling the
// published single-type placement score (target capacity 1) of every pool
// every stepHours, and returns the counts of scores 1..3 plus per-class
// means.
func sampleScores(t testing.TB, cat *catalog.Catalog, days int, stepHours float64) (dist map[int]int, classMean map[catalog.Class]float64) {
	t.Helper()
	clk := simclock.NewAtEpoch()
	cloud := New(cat, clk, 42, DefaultParams())
	dist = make(map[int]int)
	classSum := make(map[catalog.Class]float64)
	classN := make(map[catalog.Class]int)

	steps := int(float64(days) * 24 / stepHours)
	for i := 0; i < steps; i++ {
		clk.RunFor(time.Duration(stepHours * float64(time.Hour)))
		for _, p := range cat.Pools() {
			units, err := cloud.PublishedAvailableUnits(p.Type, p.AZ)
			if err != nil {
				t.Fatalf("PublishedAvailableUnits(%s,%s): %v", p.Type, p.AZ, err)
			}
			score := DiscreteScore(ContinuousScore(units), 3)
			dist[score]++
			ct, _ := cat.Type(p.Type)
			classSum[ct.Class] += float64(score)
			classN[ct.Class]++
		}
	}
	classMean = make(map[catalog.Class]float64)
	for cl, s := range classSum {
		classMean[cl] = s / float64(classN[cl])
	}
	return dist, classMean
}

func TestScoreMarginalDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	cat := catalog.Sample(0.12)
	dist, classMean := sampleScores(t, cat, 30, 6)

	total := 0
	for _, n := range dist {
		total += n
	}
	f3 := float64(dist[3]) / float64(total)
	f2 := float64(dist[2]) / float64(total)
	f1 := float64(dist[1]) / float64(total)
	t.Logf("SPS distribution: 3.0=%.2f%% 2.0=%.2f%% 1.0=%.2f%% (paper: 87.88 / 3.81 / 8.31)",
		f3*100, f2*100, f1*100)

	// Reproduction bands around Table 2.
	if f3 < 0.80 || f3 > 0.94 {
		t.Errorf("P(score=3) = %.3f, want within [0.80, 0.94] (paper 0.8788)", f3)
	}
	if f1 < 0.04 || f1 > 0.14 {
		t.Errorf("P(score=1) = %.3f, want within [0.04, 0.14] (paper 0.0831)", f1)
	}
	if f2 > 0.10 {
		t.Errorf("P(score=2) = %.3f, want < 0.10 (paper 0.0381)", f2)
	}

	// Class structure: accelerated classes must sit below the general ones
	// (Section 5.1), with DL the exception among accelerated.
	var accSum, accN, genSum, genN float64
	for cl, m := range classMean {
		t.Logf("class %-4s mean published score %.2f", cl, m)
		if cl == catalog.ClassDL {
			continue
		}
		if cl.Accelerated() {
			accSum += m
			accN++
		} else {
			genSum += m
			genN++
		}
	}
	if accSum/accN >= genSum/genN {
		t.Errorf("accelerated classes mean %.2f not below other classes mean %.2f",
			accSum/accN, genSum/genN)
	}
	if classMean[catalog.ClassP] >= classMean[catalog.ClassM] {
		t.Errorf("P class (%.2f) should score below M class (%.2f)",
			classMean[catalog.ClassP], classMean[catalog.ClassM])
	}
	if classMean[catalog.ClassDL] <= classMean[catalog.ClassP] {
		t.Errorf("DL class (%.2f) should score above P class (%.2f)",
			classMean[catalog.ClassDL], classMean[catalog.ClassP])
	}
}

func TestAdvisorMarginalDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	cat := catalog.Sample(0.12)
	clk := simclock.NewAtEpoch()
	cloud := New(cat, clk, 43, DefaultParams())

	counts := make(map[AdvisorBucket]int)
	classSum := make(map[catalog.Class]float64)
	classN := make(map[catalog.Class]int)
	days := 40
	for d := 0; d < days; d++ {
		clk.RunFor(24 * time.Hour)
		for _, e := range cloud.AdvisorSnapshot() {
			counts[e.Bucket]++
			ct, _ := cat.Type(e.Type)
			classSum[ct.Class] += e.Bucket.InterruptionFreeScore()
			classN[ct.Class]++
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	frac := func(b AdvisorBucket) float64 { return float64(counts[b]) / float64(total) }
	t.Logf("IF distribution: 3.0=%.2f%% 2.5=%.2f%% 2.0=%.2f%% 1.5=%.2f%% 1.0=%.2f%% (paper: 33.05/25.92/13.86/6.33/20.84)",
		frac(BucketLT5)*100, frac(Bucket5to10)*100, frac(Bucket10to15)*100,
		frac(Bucket15to20)*100, frac(BucketGT20)*100)

	if f := frac(BucketLT5); f < 0.23 || f > 0.43 {
		t.Errorf("P(<5%%) = %.3f, want within [0.23, 0.43] (paper 0.3305)", f)
	}
	if f := frac(BucketGT20); f < 0.12 || f > 0.30 {
		t.Errorf("P(>20%%) = %.3f, want within [0.12, 0.30] (paper 0.2084)", f)
	}
	// The distribution must be far more uniform than the placement score's:
	// every bucket should carry real mass.
	for b := BucketLT5; b <= BucketGT20; b++ {
		if frac(b) < 0.03 {
			t.Errorf("advisor bucket %s carries %.3f of mass, want >= 0.03", b, frac(b))
		}
	}

	for cl := range classSum {
		t.Logf("class %-4s mean IF score %.2f", cl, classSum[cl]/float64(classN[cl]))
	}
	mean := func(cl catalog.Class) float64 { return classSum[cl] / float64(classN[cl]) }
	if mean(catalog.ClassP) >= mean(catalog.ClassM) {
		t.Errorf("P class IF (%.2f) should be below M class IF (%.2f)", mean(catalog.ClassP), mean(catalog.ClassM))
	}
	if mean(catalog.ClassDL) <= mean(catalog.ClassP) {
		t.Errorf("DL class IF (%.2f) should be above P class IF (%.2f)", mean(catalog.ClassDL), mean(catalog.ClassP))
	}
}

// TestFig7TargetCapacityMatrix prints the Figure 7 matrix: mean region-level
// published score for representative xlarge types at increasing target
// capacity, and checks its structural properties.
func TestFig7TargetCapacityMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	cat := catalog.Standard()
	clk := simclock.NewAtEpoch()
	cloud := New(cat, clk, 44, DefaultParams())

	reps := map[catalog.Class]string{
		catalog.ClassT:   "t3.xlarge",
		catalog.ClassM:   "m5.xlarge",
		catalog.ClassC:   "c5.xlarge",
		catalog.ClassR:   "r5.xlarge",
		catalog.ClassP:   "p3.2xlarge",
		catalog.ClassG:   "g4dn.xlarge",
		catalog.ClassInf: "inf1.xlarge",
		catalog.ClassI:   "i3.xlarge",
		catalog.ClassD:   "d3en.xlarge",
	}
	targets := []int{2, 4, 8, 16, 32, 50}
	classes := []catalog.Class{catalog.ClassT, catalog.ClassM, catalog.ClassC,
		catalog.ClassR, catalog.ClassP, catalog.ClassG, catalog.ClassInf,
		catalog.ClassI, catalog.ClassD}

	// Average over repeated samples across 20 days.
	means := make(map[catalog.Class][]float64)
	for _, cl := range classes {
		means[cl] = make([]float64, len(targets))
	}
	samples := 40
	for s := 0; s < samples; s++ {
		clk.RunFor(12 * time.Hour)
		for _, cl := range classes {
			typeName := reps[cl]
			var regionCodes []string
			for _, rc := range cat.SupportedRegions(typeName) {
				regionCodes = append(regionCodes, rc.Region)
			}
			for ti, n := range targets {
				entries, err := cloud.PlacementScores(ScoreRequest{
					Types: []string{typeName}, Regions: regionCodes, TargetCapacity: n,
				})
				if err != nil {
					t.Fatal(err)
				}
				sum := 0.0
				for _, e := range entries {
					sc := e.Score
					if sc > 3 {
						sc = 3
					}
					sum += float64(sc)
				}
				means[cl][ti] += sum / float64(len(entries)) / float64(samples)
			}
		}
	}

	header := "class"
	for _, n := range targets {
		header += fmt.Sprintf("%8d", n)
	}
	t.Log(header)
	for _, cl := range classes {
		row := fmt.Sprintf("%-5s", cl)
		for _, m := range means[cl] {
			row += fmt.Sprintf("%8.2f", m)
		}
		t.Log(row)
	}

	for _, cl := range classes {
		m := means[cl]
		// Monotone non-increasing within noise.
		for i := 1; i < len(m); i++ {
			if m[i] > m[i-1]+0.12 {
				t.Errorf("class %s: score rose from %.2f (n=%d) to %.2f (n=%d)",
					cl, m[i-1], targets[i-1], m[i], targets[i])
			}
		}
	}
	// Accelerated classes drop far more steeply than general ones (paper's
	// key finding for Figure 7).
	dropP := means[catalog.ClassP][0] - means[catalog.ClassP][len(targets)-1]
	dropM := means[catalog.ClassM][0] - means[catalog.ClassM][len(targets)-1]
	if dropP <= dropM {
		t.Errorf("P class drop (%.2f) should exceed M class drop (%.2f)", dropP, dropM)
	}
	if means[catalog.ClassM][0] < 2.7 {
		t.Errorf("M class at n=2 = %.2f, want >= 2.7 (paper 2.94)", means[catalog.ClassM][0])
	}
	if means[catalog.ClassP][len(targets)-1] > 1.6 {
		t.Errorf("P class at n=50 = %.2f, want <= 1.6 (paper 1.11)", means[catalog.ClassP][len(targets)-1])
	}
	if means[catalog.ClassI][len(targets)-1] < 2.2 {
		t.Errorf("I class at n=50 = %.2f, want >= 2.2 (paper 2.63)", means[catalog.ClassI][len(targets)-1])
	}
	if means[catalog.ClassD][len(targets)-1] > 1.7 {
		t.Errorf("D class at n=50 = %.2f, want <= 1.7 (paper 1.01)", means[catalog.ClassD][len(targets)-1])
	}
}
