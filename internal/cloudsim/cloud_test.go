package cloudsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/simclock"
)

func testCloud(seed uint64) (*Cloud, *simclock.Clock, *catalog.Catalog) {
	cat := catalog.Compact(3)
	clk := simclock.NewAtEpoch()
	return New(cat, clk, seed, DefaultParams()), clk, cat
}

func TestRegimeString(t *testing.T) {
	if Healthy.String() != "healthy" || Scarce.String() != "scarce" || Constrained.String() != "constrained" {
		t.Error("regime names wrong")
	}
	if Regime(9).String() == "" {
		t.Error("unknown regime should still stringify")
	}
}

func TestStationaryFractionsSumToOne(t *testing.T) {
	for cl, cp := range DefaultParams().Class {
		h, c, s := cp.Stationary()
		if math.Abs(h+c+s-1) > 1e-9 {
			t.Errorf("class %s stationary sums to %v", cl, h+c+s)
		}
		if h <= 0 || c <= 0 || s <= 0 {
			t.Errorf("class %s has non-positive stationary fraction", cl)
		}
	}
}

func TestAcceleratedScarcerThanGeneral(t *testing.T) {
	p := DefaultParams()
	_, _, sP := p.Class[catalog.ClassP].Stationary()
	_, _, sM := p.Class[catalog.ClassM].Stationary()
	if sP <= sM {
		t.Errorf("P scarce fraction %v should exceed M %v", sP, sM)
	}
}

func TestUnitsShrinkWithSize(t *testing.T) {
	cat := catalog.Standard()
	c := New(cat, simclock.NewAtEpoch(), 1, DefaultParams())
	small, ok := cat.Type("m5.large")
	if !ok {
		t.Fatal("m5.large missing")
	}
	big, ok := cat.Type("m5.24xlarge")
	if !ok {
		t.Fatal("m5.24xlarge missing")
	}
	if c.UnitsOf(small) <= c.UnitsOf(big) {
		t.Errorf("units(large)=%v should exceed units(24xlarge)=%v",
			c.UnitsOf(small), c.UnitsOf(big))
	}
}

func TestContinuousScoreShape(t *testing.T) {
	if got := ContinuousScore(0); got != 1 {
		t.Errorf("ContinuousScore(0) = %v, want 1", got)
	}
	if got := ContinuousScore(2.0); got != 3 {
		t.Errorf("ContinuousScore(2) = %v, want 3", got)
	}
	if got := ContinuousScore(100); got <= 3 || got > 3.5 {
		t.Errorf("ContinuousScore(100) = %v, want in (3, 3.5]", got)
	}
	// Monotone.
	prev := -1.0
	for r := 0.0; r < 10; r += 0.05 {
		s := ContinuousScore(r)
		if s < prev {
			t.Fatalf("ContinuousScore not monotone at ratio %v", r)
		}
		prev = s
	}
}

func TestDiscreteScoreClamps(t *testing.T) {
	if DiscreteScore(0.2, 3) != 1 {
		t.Error("low sum should clamp to 1")
	}
	if DiscreteScore(2.9, 3) != 2 {
		t.Error("2.9 should floor to 2")
	}
	if DiscreteScore(11.7, 10) != 10 {
		t.Error("11.7 should clamp to 10")
	}
}

func TestPlacementScoresSingleType(t *testing.T) {
	c, _, cat := testCloud(2)
	typeName := cat.Types()[0].Name
	var regions []string
	for _, rc := range cat.SupportedRegions(typeName) {
		regions = append(regions, rc.Region)
	}
	entries, err := c.PlacementScores(ScoreRequest{
		Types: []string{typeName}, Regions: regions, TargetCapacity: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(regions) {
		t.Errorf("got %d region entries, want %d", len(entries), len(regions))
	}
	for _, e := range entries {
		if e.Score < 1 || e.Score > 10 {
			t.Errorf("region score %d out of range", e.Score)
		}
		if e.AZ != "" {
			t.Errorf("region-level result has AZ %q", e.AZ)
		}
	}
}

func TestPlacementScoresSingleAZ(t *testing.T) {
	c, _, cat := testCloud(3)
	typeName := "m5.xlarge"
	if _, ok := cat.Type(typeName); !ok {
		typeName = cat.TypesOfClass(catalog.ClassM)[0].Name
	}
	regions := cat.SupportedRegions(typeName)
	region := regions[0].Region
	entries, err := c.PlacementScores(ScoreRequest{
		Types: []string{typeName}, Regions: []string{region},
		TargetCapacity: 1, SingleAZ: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != regions[0].AZCount {
		t.Errorf("got %d AZ entries, want %d", len(entries), regions[0].AZCount)
	}
	for _, e := range entries {
		if e.AZ == "" {
			t.Error("single-AZ result missing AZ")
		}
		if e.Score < 1 || e.Score > 3 {
			t.Errorf("single-type AZ score %d outside observed 1..3 range", e.Score)
		}
	}
}

func TestPlacementScoresValidation(t *testing.T) {
	c, _, cat := testCloud(4)
	typeName := cat.Types()[0].Name
	cases := []ScoreRequest{
		{Types: nil, Regions: []string{"us-east-1"}, TargetCapacity: 1},
		{Types: []string{typeName}, Regions: nil, TargetCapacity: 1},
		{Types: []string{typeName}, Regions: []string{"us-east-1"}, TargetCapacity: 0},
		{Types: []string{typeName}, Regions: []string{"nowhere-1"}, TargetCapacity: 1},
	}
	for i, req := range cases {
		if _, err := c.PlacementScores(req); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCompositeScoreAtLeastSumOfSingles(t *testing.T) {
	// The core Figure 6 property, checked at matched observation instants.
	c, clk, cat := testCloud(5)
	types := []string{}
	for _, cl := range []catalog.Class{catalog.ClassM, catalog.ClassC, catalog.ClassR} {
		ts := cat.TypesOfClass(cl)
		types = append(types, ts[0].Name)
	}
	region := "us-east-1"
	greater, equal, less := 0, 0, 0
	for i := 0; i < 200; i++ {
		clk.RunFor(2 * time.Hour)
		sumSingles := 0
		ok := true
		for _, tn := range types {
			e, err := c.PlacementScores(ScoreRequest{Types: []string{tn}, Regions: []string{region}, TargetCapacity: 4})
			if err != nil || len(e) == 0 {
				ok = false
				break
			}
			s := e[0].Score
			if s > 3 {
				s = 3
			}
			sumSingles += s
		}
		if !ok {
			continue
		}
		comp, err := c.PlacementScores(ScoreRequest{Types: types, Regions: []string{region}, TargetCapacity: 4})
		if err != nil || len(comp) == 0 {
			continue
		}
		switch {
		case comp[0].Score > sumSingles:
			greater++
		case comp[0].Score == sumSingles:
			equal++
		default:
			less++
		}
	}
	if less > 0 {
		t.Errorf("composite < sum of singles in %d synchronous cases, want 0", less)
	}
	if greater == 0 {
		t.Error("composite never exceeded sum of singles; bonus mechanism inert")
	}
	t.Logf("composite vs singles: greater=%d equal=%d less=%d", greater, equal, less)
}

func TestAdvisorEntry(t *testing.T) {
	c, _, cat := testCloud(6)
	typeName := cat.Types()[0].Name
	region := cat.SupportedRegions(typeName)[0].Region
	e, err := c.AdvisorEntryFor(typeName, region)
	if err != nil {
		t.Fatal(err)
	}
	if e.Bucket < BucketLT5 || e.Bucket > BucketGT20 {
		t.Errorf("bucket %v out of range", e.Bucket)
	}
	if e.SavingsPct < 40 || e.SavingsPct > 85 {
		t.Errorf("savings %d%% outside plausible spot band", e.SavingsPct)
	}
	if _, err := c.AdvisorEntryFor("bogus.xlarge", region); err == nil {
		t.Error("unknown type should error")
	}
}

func TestAdvisorSnapshotCoversSupportedPairs(t *testing.T) {
	c, _, cat := testCloud(7)
	want := 0
	for _, tp := range cat.Types() {
		want += len(cat.SupportedRegions(tp.Name))
	}
	got := len(c.AdvisorSnapshot())
	if got != want {
		t.Errorf("snapshot has %d entries, want %d", got, want)
	}
}

func TestBucketConversions(t *testing.T) {
	cases := []struct {
		ratio float64
		want  AdvisorBucket
		score float64
	}{
		{0.01, BucketLT5, 3.0},
		{0.07, Bucket5to10, 2.5},
		{0.12, Bucket10to15, 2.0},
		{0.17, Bucket15to20, 1.5},
		{0.30, BucketGT20, 1.0},
	}
	for _, tc := range cases {
		if got := AdvisorBucket(AdvisorBucketOf(tc.ratio)); got != tc.want {
			t.Errorf("AdvisorBucketOf(%v) = %v, want %v", tc.ratio, got, tc.want)
		}
		if got := tc.want.InterruptionFreeScore(); got != tc.score {
			t.Errorf("%v.InterruptionFreeScore() = %v, want %v", tc.want, got, tc.score)
		}
	}
}

func TestSpotPriceBelowOnDemand(t *testing.T) {
	c, clk, cat := testCloud(8)
	for i := 0; i < 20; i++ {
		clk.RunFor(6 * time.Hour)
		for _, p := range cat.Pools()[:30] {
			spot, err := c.SpotPriceUSD(p.Type, p.AZ)
			if err != nil {
				t.Fatal(err)
			}
			od, _ := cat.OnDemandPrice(p.Type, p.Region)
			if spot <= 0 || spot >= od {
				t.Fatalf("spot price %v not in (0, od=%v) for %v", spot, od, p)
			}
		}
	}
}

func TestPriceHistoryWindow(t *testing.T) {
	c, clk, cat := testCloud(9)
	p := cat.Pools()[0]
	// Observe the pool regularly so price changes materialize.
	for i := 0; i < 24*30; i++ {
		clk.RunFor(time.Hour)
		if _, err := c.SpotPriceUSD(p.Type, p.AZ); err != nil {
			t.Fatal(err)
		}
	}
	from := simclock.Epoch
	to := clk.Now()
	hist, err := c.PriceHistory(p.Type, p.AZ, from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) == 0 {
		t.Fatal("no price points in 30 days")
	}
	for i, pt := range hist {
		if pt.At.Before(from) || pt.At.After(to) {
			t.Errorf("point %d at %v outside window", i, pt.At)
		}
		if i > 0 && pt.At.Before(hist[i-1].At) {
			t.Error("price history not sorted")
		}
	}
	// Sub-window query returns a subset.
	sub, err := c.PriceHistory(p.Type, p.AZ, from.Add(10*24*time.Hour), to)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) > len(hist) {
		t.Error("sub-window returned more points")
	}
}

func TestPriceChangesAreSparse(t *testing.T) {
	// Post-2017 policy: the price changes far less often than it is
	// observed (Figure 10).
	c, clk, cat := testCloud(10)
	p := cat.Pools()[0]
	observations := 24 * 14 * 6 // every 10 min for 14 days
	for i := 0; i < observations; i++ {
		clk.RunFor(10 * time.Minute)
		if _, err := c.SpotPriceUSD(p.Type, p.AZ); err != nil {
			t.Fatal(err)
		}
	}
	hist, err := c.PriceHistory(p.Type, p.AZ, simclock.Epoch, clk.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) > observations/20 {
		t.Errorf("price changed %d times in %d observations; should be sparse", len(hist), observations)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []int {
		c, clk, cat := testCloud(77)
		var scores []int
		for i := 0; i < 10; i++ {
			clk.RunFor(13 * time.Hour)
			for _, p := range cat.Pools()[:25] {
				u, err := c.PublishedAvailableUnits(p.Type, p.AZ)
				if err != nil {
					t.Fatal(err)
				}
				scores = append(scores, DiscreteScore(ContinuousScore(u), 3))
			}
		}
		return scores
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestResolveRejectsBadPools(t *testing.T) {
	c, _, cat := testCloud(11)
	if _, err := c.LiveAvailableUnits("no-such.xlarge", "us-east-1a"); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := c.LiveAvailableUnits(cat.Types()[0].Name, "xx-east-1a"); err == nil {
		t.Error("unknown AZ accepted")
	}
	// A type not offered in some AZ: find a tier-3 type and an AZ outside
	// its support set.
	var narrow string
	for _, tp := range cat.Types() {
		if tp.Tier == 3 {
			narrow = tp.Name
			break
		}
	}
	if narrow != "" {
		supported := map[string]bool{}
		for _, rc := range cat.SupportedRegions(narrow) {
			for _, az := range cat.SupportedAZs(narrow, rc.Region) {
				supported[az] = true
			}
		}
		for _, r := range cat.Regions() {
			for _, az := range r.AZs {
				if !supported[az] {
					if _, err := c.LiveAvailableUnits(narrow, az); err == nil {
						t.Errorf("type %s accepted in unsupported AZ %s", narrow, az)
					}
					return
				}
			}
		}
	}
}

func TestShockDepressesScores(t *testing.T) {
	// Figure 3a: availability dips around June 2, 2022 for most types.
	cat := catalog.Compact(3)
	clk := simclock.NewAtEpoch()
	p := DefaultParams()
	cloud := New(cat, clk, 123, p)

	meanScore := func() float64 {
		sum, n := 0.0, 0
		for _, pl := range cat.Pools() {
			u, err := cloud.LiveAvailableUnits(pl.Type, pl.AZ)
			if err != nil {
				t.Fatal(err)
			}
			sum += float64(DiscreteScore(ContinuousScore(u), 3))
			n++
		}
		return sum / float64(n)
	}

	clk.RunUntil(p.ShockStart.Add(-24 * time.Hour))
	before := meanScore()
	clk.RunUntil(p.ShockStart.Add(p.ShockDuration / 2))
	during := meanScore()
	clk.RunUntil(p.ShockStart.Add(p.ShockDuration).Add(72 * time.Hour))
	after := meanScore()

	if during >= before-0.3 {
		t.Errorf("shock did not depress scores: before=%.2f during=%.2f", before, during)
	}
	if after <= during+0.3 {
		t.Errorf("scores did not recover: during=%.2f after=%.2f", during, after)
	}
}
