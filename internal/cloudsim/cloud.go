// Package cloudsim simulates the spot-capacity subsystem of a public cloud.
//
// It is the substrate standing in for live AWS EC2 in this reproduction. The
// simulator maintains, for every (instance family, region), a semi-Markov
// capacity regime (Healthy / Constrained / Scarce) plus a slow churn latent
// driving interruptions, and for every (family, availability zone) an
// Ornstein-Uhlenbeck jitter around the regime mean, a published availability
// snapshot (what the placement-score API reports), and a post-2017 smoothed
// spot price. Spot requests run through the Table 1 lifecycle
// (Pending Evaluation -> Holding -> Fulfilled -> Terminal) against the live
// state, while the three public datasets the paper archives — placement
// score, advisor interruption ratio, and spot price — are derived,
// vendor-delayed views of the same state. The separation between live state
// and published views is what reproduces the paper's core finding: the
// datasets disagree with each other and with request outcomes.
package cloudsim

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/catalog"
	"repro/internal/simclock"
	"repro/internal/simrand"
)

// Regime is the capacity state of a (family, region) pair.
type Regime int

// Capacity regimes, from plentiful to empty.
const (
	Healthy Regime = iota
	Constrained
	Scarce
)

// String returns the regime name.
func (r Regime) String() string {
	switch r {
	case Healthy:
		return "healthy"
	case Constrained:
		return "constrained"
	case Scarce:
		return "scarce"
	}
	return fmt.Sprintf("Regime(%d)", int(r))
}

// Additional vendor-behavior constants that rarely need tuning. They are
// package-level rather than Params fields to keep Params focused on the
// calibration surface.
const (
	// scoreRampLo/scoreRampHi bound the linear ramp of the continuous
	// placement subscore: ratio <= lo -> 1.0, ratio >= hi -> 3.0.
	scoreRampLo = 0.55
	scoreRampHi = 2.0
	// scoreBonusMax/scoreBonusSat shape the saturation bonus above the
	// ramp: pools with comfortable headroom contribute up to scoreBonusMax
	// extra to composite queries (Figure 6's "composite >= sum of
	// singles", strictly greater in ~60% of cases).
	scoreBonusMax = 0.45
	scoreBonusSat = 3.5
	// scoreNoiseSigma is the lognormal sigma of the vendor-side published
	// availability snapshot noise.
	scoreNoiseSigma = 0.18
	// pubRefreshMean/Min/Max bound the vendor's score snapshot refresh
	// interval per (family, region).
	pubRefreshMean = 150 * time.Minute
	pubRefreshMin  = 30 * time.Minute
	pubRefreshMax  = 8 * time.Hour
	// advisorRefreshInterval is how often the advisor dataset recomputes.
	advisorRefreshInterval = 24 * time.Hour
	// churnOffsetSigma is the stddev of the permanent per-(family, region)
	// churn identity offset.
	churnOffsetSigma = 0.80
	// churnStatSigma is the stationary stddev of the churn OU around its
	// mean.
	churnStatSigma = 1.05
	// sizeChurnSlope worsens churn for larger sizes (Figure 5's declining
	// interruption-free score).
	sizeChurnSlope = 0.12
	// priceHistoryRetention mirrors DescribeSpotPriceHistory's 90-day cap.
	priceHistoryRetention = 90 * 24 * time.Hour
	// xiClamp bounds the churn latent inside the hazard exponent.
	xiClamp = 3.0
)

type frKey struct{ family, region string }

type faKey struct{ family, az string }

// famRegion is the per-(family, region) dynamic state.
type famRegion struct {
	rng *simrand.Rand

	regime      Regime
	regimeUntil time.Time

	// churn latent xi: OU around xiMu with stationary sd churnStatSigma.
	xi     float64
	xiMu   float64
	xiLast time.Time

	// advisor published view
	advInit    bool
	advRatio   float64
	advBucket  int
	advRefresh time.Time

	// changed timestamps for published advisor bucket (for analysis tests).
	advChangedAt time.Time
}

// famAZ is the per-(family, availability zone) dynamic state.
type famAZ struct {
	rng  *simrand.Rand
	last time.Time

	jitter float64
	// shockBias is the availability bias applied during the global shock
	// window (0 for unaffected families).
	shockBias float64

	// published availability snapshot (vendor-delayed, noisy view of live
	// availability).
	pubInit    bool
	pubA       float64
	pubRefresh time.Time

	// pricing
	priceLatent float64
	priceLast   time.Time
	pubFrac     float64
	priceInit   bool
	priceHist   []FracPoint
}

// FracPoint is one published spot-price change, expressed as the fraction of
// the on-demand price.
type FracPoint struct {
	At   time.Time
	Frac float64
}

// Cloud is the simulated spot subsystem.
type Cloud struct {
	cat  *catalog.Catalog
	clk  *simclock.Clock
	p    Params
	root *simrand.Rand

	fr map[frKey]*famRegion
	fa map[faKey]*famAZ

	shocked   map[string]bool          // family -> affected by the global shock
	famClass  map[string]catalog.Class // family -> instance class
	nextReqID int
}

// New constructs a simulated cloud over the catalog, driven by the clock,
// with all stochastic state derived from seed.
func New(cat *catalog.Catalog, clk *simclock.Clock, seed uint64, p Params) *Cloud {
	c := &Cloud{
		cat:     cat,
		clk:     clk,
		p:       p,
		root:    simrand.New(seed),
		fr:      make(map[frKey]*famRegion),
		fa:      make(map[faKey]*famAZ),
		shocked: make(map[string]bool),
	}
	c.famClass = make(map[string]catalog.Class)
	for _, t := range cat.Types() {
		c.famClass[t.Family] = t.Class
	}
	// Deterministic order for shock assignment.
	shockRNG := c.root.Stream("shock")
	famList := make([]string, 0, len(c.famClass))
	for f := range c.famClass {
		famList = append(famList, f)
	}
	sort.Strings(famList)
	for _, f := range famList {
		c.shocked[f] = shockRNG.Bool(p.ShockFraction)
	}
	return c
}

// familyClass returns the instance class of a family.
func (c *Cloud) familyClass(family string) catalog.Class {
	if cl, ok := c.famClass[family]; ok {
		return cl
	}
	return catalog.ClassM
}

// Catalog returns the inventory the cloud was built over.
func (c *Cloud) Catalog() *catalog.Catalog { return c.cat }

// Clock returns the simulation clock driving the cloud.
func (c *Cloud) Clock() *simclock.Clock { return c.clk }

// Params returns the calibration parameters in use.
func (c *Cloud) Params() Params { return c.p }

// classOf returns the class parameters for an instance family, falling back
// to ClassM parameters for unknown classes (which cannot happen with catalog
// types).
func (c *Cloud) classParams(class catalog.Class) ClassParams {
	if cp, ok := c.p.Class[class]; ok {
		return cp
	}
	return c.p.Class[catalog.ClassM]
}

func (c *Cloud) regimeMean(r Regime) float64 {
	switch r {
	case Healthy:
		return c.p.MuHealthy
	case Constrained:
		return c.p.MuConstrained
	default:
		return c.p.MuScarce
	}
}

func (c *Cloud) regimeSigma(r Regime) float64 {
	switch r {
	case Healthy:
		return c.p.SigmaHealthy
	case Constrained:
		return c.p.SigmaConstrained
	default:
		return c.p.SigmaScarce
	}
}

// famRegionState returns (creating lazily) the state for (family, region),
// advanced to the current simulation time.
func (c *Cloud) famRegionState(family, region string) *famRegion {
	k := frKey{family, region}
	s, ok := c.fr[k]
	now := c.clk.Now()
	if !ok {
		s = c.newFamRegion(family, region, now)
		c.fr[k] = s
	}
	c.advanceFamRegion(s, family, now)
	return s
}

func (c *Cloud) newFamRegion(family, region string, now time.Time) *famRegion {
	cls := c.familyClass(family)
	cp := c.classParams(cls)
	rng := c.root.Stream("fr/" + family + "/" + region)
	s := &famRegion{rng: rng}

	// Initial regime from the stationary distribution; dwell is memoryless
	// so a fresh draw is exact.
	h, cc, _ := cp.Stationary()
	u := rng.Float64()
	switch {
	case u < h:
		s.regime = Healthy
	case u < h+cc:
		s.regime = Constrained
	default:
		s.regime = Scarce
	}
	s.regimeUntil = now.Add(c.sampleDwell(rng, cp, s.regime))

	s.xiMu = cp.ChurnMean + rng.Normal(0, churnOffsetSigma)
	s.xi = rng.Normal(s.xiMu, churnStatSigma)
	s.xiLast = now

	s.advRefresh = now.Add(time.Duration(rng.Float64() * float64(advisorRefreshInterval)))
	s.refreshAdvisor(c, now)
	return s
}

func (c *Cloud) sampleDwell(rng *simrand.Rand, cp ClassParams, r Regime) time.Duration {
	var mean time.Duration
	switch r {
	case Healthy:
		mean = cp.DwellHealthy
	case Constrained:
		mean = cp.DwellConstrained
	default:
		mean = cp.DwellScarce
	}
	return time.Duration(rng.Exponential(float64(mean)))
}

func (c *Cloud) advanceFamRegion(s *famRegion, family string, now time.Time) {
	cls := c.familyClass(family)
	cp := c.classParams(cls)

	// Regime transitions up to now.
	for !s.regimeUntil.After(now) {
		switch s.regime {
		case Healthy:
			s.regime = Constrained
		case Constrained:
			if s.rng.Bool(cp.PCS) {
				s.regime = Scarce
			} else {
				s.regime = Healthy
			}
		case Scarce:
			s.regime = Constrained
		}
		s.regimeUntil = s.regimeUntil.Add(c.sampleDwell(s.rng, cp, s.regime))
	}

	// Churn OU.
	if now.After(s.xiLast) {
		dtH := now.Sub(s.xiLast).Hours()
		theta := c.p.ChurnThetaPerHour
		sigmaDiff := churnStatSigma * math.Sqrt(2*theta)
		s.xi = s.rng.OUStep(s.xi, s.xiMu, theta, sigmaDiff, dtH)
		s.xiLast = now
	}

	// Advisor refresh.
	for !s.advRefresh.After(now) {
		s.refreshAdvisor(c, s.advRefresh)
		s.advRefresh = s.advRefresh.Add(advisorRefreshInterval)
	}
}

// refreshAdvisor recomputes the published advisor ratio and bucket from the
// churn latent.
func (s *famRegion) refreshAdvisor(c *Cloud, at time.Time) {
	r := c.p.AdvisorMaxRatio * logistic(s.xi)
	b := AdvisorBucketOf(r)
	if !s.advInit || b != s.advBucket {
		s.advChangedAt = at
	}
	s.advRatio = r
	s.advBucket = b
	s.advInit = true
}

// famAZState returns (creating lazily) the per-(family, AZ) state advanced
// to now. The caller must have already advanced the owning famRegion.
func (c *Cloud) famAZState(family, az string, fr *famRegion) *famAZ {
	k := faKey{family, az}
	s, ok := c.fa[k]
	now := c.clk.Now()
	if !ok {
		rng := c.root.Stream("fa/" + family + "/" + az)
		s = &famAZ{rng: rng, last: now}
		s.jitter = rng.Normal(0, c.regimeSigma(fr.regime))
		if c.shocked[family] {
			s.shockBias = c.p.ShockBias
		}
		s.priceLatent = rng.NormFloat64()
		s.priceLast = now
		s.pubRefresh = now.Add(time.Duration(rng.Range(0, float64(pubRefreshMean))))
		c.fa[k] = s
	}
	c.advanceFamAZ(s, fr, now)
	return s
}

func (c *Cloud) advanceFamAZ(s *famAZ, fr *famRegion, now time.Time) {
	if now.After(s.last) {
		dtH := now.Sub(s.last).Hours()
		sigma := c.regimeSigma(fr.regime)
		sigmaDiff := sigma * math.Sqrt(2*c.p.ThetaPerHour)
		s.jitter = s.rng.OUStep(s.jitter, 0, c.p.ThetaPerHour, sigmaDiff, dtH)
		s.last = now
	}
	if !s.pubInit {
		s.snapshotAvailability(c, fr, now)
		s.pubInit = true
	}
	// Vendor-side snapshot cadence: the published availability only changes
	// at refresh instants, so the API view lags live state by up to the
	// refresh interval. This staleness is deliberate — it reproduces both
	// the update-frequency distribution of Figure 10 and the score/reality
	// mismatches of Table 3.
	for !s.pubRefresh.After(now) {
		s.snapshotAvailability(c, fr, now)
		iv := s.rng.Exponential(float64(pubRefreshMean))
		if iv < float64(pubRefreshMin) {
			iv = float64(pubRefreshMin)
		}
		if iv > float64(pubRefreshMax) {
			iv = float64(pubRefreshMax)
		}
		s.pubRefresh = s.pubRefresh.Add(time.Duration(iv))
	}
}

// snapshotAvailability recomputes the published availability from live state
// plus vendor measurement noise.
func (s *famAZ) snapshotAvailability(c *Cloud, fr *famRegion, now time.Time) {
	live := c.liveAvailability(fr, s, now)
	noise := math.Exp(s.rng.Normal(0, scoreNoiseSigma))
	s.pubA = clamp(live*noise, 0, 1)
}

// liveAvailability computes the live availability fraction for a
// (family, AZ). The shock bias of Figure 3a applies inside its window for
// affected families.
func (c *Cloud) liveAvailability(fr *famRegion, fa *famAZ, at time.Time) float64 {
	a := c.regimeMean(fr.regime) + fa.jitter
	if c.shockActiveAt(at) {
		a += fa.shockBias
	}
	return clamp(a, 0, 1)
}

func (c *Cloud) shockActiveAt(at time.Time) bool {
	return !at.Before(c.p.ShockStart) && at.Before(c.p.ShockStart.Add(c.p.ShockDuration))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
