package analysis

import (
	"math"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/collector"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

// collectedArchive runs a short end-to-end collection and returns its store.
func collectedArchive(t *testing.T, days int) (*tsdb.DB, *catalog.Catalog, time.Time, time.Time) {
	t.Helper()
	cat := catalog.Compact(2)
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, 2024, cloudsim.DefaultParams())
	db, err := tsdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	cfg := collector.DefaultConfig()
	cfg.ScoreInterval = 30 * time.Minute
	cfg.AdvisorInterval = 30 * time.Minute
	cfg.PriceInterval = 30 * time.Minute
	col, err := collector.New(cloud, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Run(time.Duration(days) * 24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	return db, cat, simclock.Epoch, clk.Now()
}

func TestDailyClassMeans(t *testing.T) {
	db, cat, from, _ := collectedArchive(t, 4)
	rows := DailyClassMeans(db, cat, tsdb.DatasetPlacementScore, from, 4)
	if len(rows) != len(catalog.Classes) {
		t.Fatalf("rows = %d, want %d", len(rows), len(catalog.Classes))
	}
	for cl, row := range rows {
		if len(row) != 4 {
			t.Fatalf("class %s has %d days", cl, len(row))
		}
		for d, v := range row {
			if math.IsNaN(v) {
				t.Errorf("class %s day %d is NaN", cl, d)
				continue
			}
			if v < 1 || v > 3 {
				t.Errorf("class %s day %d = %v outside score range", cl, d, v)
			}
		}
	}
	// Section 5.1 structure: accelerated (excluding DL) below general.
	acc, gen := 0.0, 0.0
	accN, genN := 0, 0
	for cl, row := range rows {
		if cl == catalog.ClassDL {
			continue
		}
		if cl.Accelerated() {
			acc += Mean(row)
			accN++
		} else {
			gen += Mean(row)
			genN++
		}
	}
	if acc/float64(accN) >= gen/float64(genN) {
		t.Errorf("accelerated mean %.2f not below general %.2f", acc/float64(accN), gen/float64(genN))
	}
}

func TestRegionClassMeansNACells(t *testing.T) {
	db, cat, from, to := collectedArchive(t, 2)
	rows := RegionClassMeans(db, cat, tsdb.DatasetPlacementScore, from, to)
	naCount, valCount := 0, 0
	for _, cl := range catalog.Classes {
		row := rows[cl]
		if len(row) != cat.NumRegions() {
			t.Fatalf("class %s row has %d regions", cl, len(row))
		}
		for region, v := range row {
			if math.IsNaN(v) {
				naCount++
				// NA must mean genuinely unsupported: no type of this
				// class offered in the region.
				for _, tp := range cat.TypesOfClass(cl) {
					if cat.Supports(tp.Name, region) {
						t.Errorf("class %s region %s NA but %s supported there", cl, region, tp.Name)
						break
					}
				}
			} else {
				valCount++
			}
		}
	}
	if naCount == 0 {
		t.Error("no NA cells; Figure 4 expects unsupported (class, region) pairs")
	}
	if valCount == 0 {
		t.Fatal("no populated cells")
	}
}

func TestSizeMeansDecline(t *testing.T) {
	db, cat, from, to := collectedArchive(t, 3)
	rows := SizeMeans(db, cat, from, to, 0)
	if len(rows) < 3 {
		t.Fatalf("only %d size rows", len(rows))
	}
	// Ordered small to large.
	for i := 1; i < len(rows); i++ {
		if catalog.SizeRank(rows[i-1].Size) >= catalog.SizeRank(rows[i].Size) {
			t.Error("size rows not ordered")
		}
	}
	// The trend of Figure 5: the small half should outscore the large half
	// on both metrics.
	half := len(rows) / 2
	var smallSPS, largeSPS, smallIF, largeIF []float64
	for i, r := range rows {
		if i < half {
			smallSPS = append(smallSPS, r.MeanSPS)
			smallIF = append(smallIF, r.MeanIF)
		} else {
			largeSPS = append(largeSPS, r.MeanSPS)
			largeIF = append(largeIF, r.MeanIF)
		}
	}
	if Mean(smallSPS) <= Mean(largeSPS) {
		t.Errorf("small sizes SPS %.2f not above large %.2f", Mean(smallSPS), Mean(largeSPS))
	}
	if Mean(smallIF) <= Mean(largeIF) {
		t.Errorf("small sizes IF %.2f not above large %.2f", Mean(smallIF), Mean(largeIF))
	}
	// minTypes filter prunes sparse sizes.
	strict := SizeMeans(db, cat, from, to, 5)
	if len(strict) >= len(rows) {
		t.Error("minTypes filter did not prune")
	}
}

func TestValueDistributionScores(t *testing.T) {
	db, _, from, to := collectedArchive(t, 3)
	d := ValueDistribution(db, tsdb.DatasetPlacementScore, from, to, time.Hour)
	sum := 0.0
	for v, frac := range d {
		if v != 1 && v != 2 && v != 3 {
			t.Errorf("unexpected SPS value %v", v)
		}
		sum += frac
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %v", sum)
	}
	if d[3] < d[1] || d[3] < d[2] {
		t.Errorf("score 3 should dominate: %v", d)
	}
	dIF := ValueDistribution(db, tsdb.DatasetInterruptFree, from, to, time.Hour)
	for v := range dIF {
		if v < 1 || v > 3 {
			t.Errorf("unexpected IF value %v", v)
		}
	}
	// IF spreads across at least 4 of the 5 buckets (Table 2's "more
	// uniform" property).
	if len(dIF) < 4 {
		t.Errorf("IF distribution too concentrated: %v", dIF)
	}
}

func TestCorrelationsNearZero(t *testing.T) {
	db, _, from, to := collectedArchive(t, 6)
	sets := Correlations(db, from, to, time.Hour)
	if len(sets.SPSvsIF) == 0 || len(sets.SPSvsPrice) == 0 || len(sets.IFvsPrice) == 0 {
		t.Fatalf("missing correlation sets: %d/%d/%d",
			len(sets.SPSvsIF), len(sets.IFvsPrice), len(sets.SPSvsPrice))
	}
	// Section 5.3: coefficients concentrate near zero.
	for name, xs := range map[string][]float64{
		"sps-if": sets.SPSvsIF, "if-price": sets.IFvsPrice, "sps-price": sets.SPSvsPrice,
	} {
		m := Mean(xs)
		if math.Abs(m) > 0.35 {
			t.Errorf("%s mean correlation %.2f too far from 0", name, m)
		}
	}
}

func TestScoreDifferenceHistogram(t *testing.T) {
	db, _, from, to := collectedArchive(t, 3)
	h := ScoreDifferenceHistogram(db, from, to, time.Hour)
	sum := 0.0
	for v, frac := range h {
		if v < 0 || v > 2 {
			t.Errorf("difference %v outside [0, 2]", v)
		}
		sum += frac
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("histogram sums to %v", sum)
	}
	// Figure 9: zero difference is the most common single value.
	for v, frac := range h {
		if v != 0 && frac > h[0] {
			t.Errorf("difference %v (%.3f) more common than 0 (%.3f)", v, frac, h[0])
		}
	}
	// And contradictions exist.
	if h[1.5]+h[2.0] == 0 {
		t.Error("no contradicting scores at all; paper finds ~24%")
	}
}

func TestUpdateIntervalOrdering(t *testing.T) {
	db, _, _, _ := collectedArchive(t, 8)
	sps := UpdateIntervalCDF(db, tsdb.DatasetPlacementScore)
	price := UpdateIntervalCDF(db, tsdb.DatasetPrice)
	ifs := UpdateIntervalCDF(db, tsdb.DatasetInterruptFree)
	if sps.N() == 0 || price.N() == 0 {
		t.Fatalf("no update intervals: sps=%d price=%d if=%d", sps.N(), price.N(), ifs.N())
	}
	// Figure 10 ordering: SPS updates most frequently; IF least. Compare
	// medians where data exists (IF may have very few changes in 8 days —
	// that itself is the paper's point).
	spsMed := sps.Quantile(0.5)
	priceMed := price.Quantile(0.5)
	if spsMed >= priceMed {
		t.Errorf("SPS median interval %.1fh not below price %.1fh", spsMed, priceMed)
	}
	if ifs.N() > 10 {
		ifMed := ifs.Quantile(0.5)
		if priceMed >= ifMed {
			t.Errorf("price median interval %.1fh not below IF %.1fh", priceMed, ifMed)
		}
	}
	t.Logf("median hours between changes: sps=%.1f price=%.1f if(n=%d)=%.1f",
		spsMed, priceMed, ifs.N(), ifs.Quantile(0.5))
}

func TestOverallAndClassMeans(t *testing.T) {
	db, cat, from, to := collectedArchive(t, 3)
	overall := OverallMean(db, tsdb.DatasetPlacementScore, from, to)
	if overall < 2.3 || overall > 3.0 {
		t.Errorf("overall SPS mean %.2f outside plausible band (paper 2.8)", overall)
	}
	cm := ClassMeans(db, cat, tsdb.DatasetPlacementScore, from, to)
	if cm[catalog.ClassP] >= cm[catalog.ClassM] {
		t.Errorf("P mean %.2f not below M %.2f", cm[catalog.ClassP], cm[catalog.ClassM])
	}
	ifOverall := OverallMean(db, tsdb.DatasetInterruptFree, from, to)
	if ifOverall >= overall {
		t.Errorf("IF overall %.2f should sit below SPS overall %.2f (paper: 2.22 vs 2.80)", ifOverall, overall)
	}
}
