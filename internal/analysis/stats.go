// Package analysis provides the statistics toolkit and the figure-level
// aggregations of the paper's evaluation (Section 5): Pearson correlations
// across dataset pairs (Figure 8), CDFs (Figures 8, 10, 11), histograms
// (Figure 9), temporal/spatial heatmap aggregation (Figures 3, 4), size
// grouping (Figure 5), and value distributions (Table 2).
package analysis

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, ignoring NaNs. It returns NaN for
// an empty (or all-NaN) input.
func Mean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		sum += x
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs by linear
// interpolation of the sorted sample, ignoring NaNs. It returns NaN for an
// empty input.
func Quantile(xs []float64, q float64) float64 {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return math.NaN()
	}
	sort.Float64s(clean)
	if q <= 0 {
		return clean[0]
	}
	if q >= 1 {
		return clean[len(clean)-1]
	}
	pos := q * float64(len(clean)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return clean[lo]
	}
	frac := pos - float64(lo)
	return clean[lo]*(1-frac) + clean[hi]*frac
}

// Median returns the 0.5-quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Pearson returns the Pearson correlation coefficient of the paired samples
// (paper Section 5.3). Pairs containing NaN are skipped. ok is false when
// fewer than 3 valid pairs remain or either side has zero variance (a
// constant series has no defined correlation).
func Pearson(x, y []float64) (r float64, ok bool) {
	if len(x) != len(y) {
		return 0, false
	}
	var sx, sy float64
	n := 0
	for i := range x {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			continue
		}
		sx += x[i]
		sy += y[i]
		n++
	}
	if n < 3 {
		return 0, false
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := range x {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			continue
		}
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0, false
	}
	return cov / math.Sqrt(vx*vy), true
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples, dropping NaNs.
func NewCDF(samples []float64) CDF {
	s := make([]float64, 0, len(samples))
	for _, v := range samples {
		if !math.IsNaN(v) {
			s = append(s, v)
		}
	}
	sort.Float64s(s)
	return CDF{sorted: s}
}

// N returns the sample count.
func (c CDF) N() int { return len(c.sorted) }

// FractionBelow returns P(X <= x).
func (c CDF) FractionBelow(x float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile of the sample.
func (c CDF) Quantile(q float64) float64 {
	return Quantile(c.sorted, q)
}

// Points returns (value, cumulative fraction) pairs suitable for plotting,
// thinned to at most maxPoints.
func (c CDF) Points(maxPoints int) [][2]float64 {
	n := len(c.sorted)
	if n == 0 || maxPoints <= 0 {
		return nil
	}
	stride := 1
	if n > maxPoints {
		stride = n / maxPoints
	}
	var out [][2]float64
	for i := 0; i < n; i += stride {
		out = append(out, [2]float64{c.sorted[i], float64(i+1) / float64(n)})
	}
	if last := c.sorted[n-1]; len(out) == 0 || out[len(out)-1][0] != last {
		out = append(out, [2]float64{last, 1})
	}
	return out
}

// Histogram counts samples into fixed-width bins anchored at edges
// [edges[i], edges[i+1]). Samples outside the edges are clamped into the
// first/last bin. It returns per-bin fractions summing to 1 (or nil for no
// samples).
func Histogram(samples []float64, edges []float64) []float64 {
	if len(edges) < 2 {
		return nil
	}
	counts := make([]float64, len(edges)-1)
	n := 0
	for _, v := range samples {
		if math.IsNaN(v) {
			continue
		}
		idx := sort.SearchFloat64s(edges, v)
		// SearchFloat64s returns the insertion point; convert to bin index.
		if idx > 0 && (idx == len(edges) || edges[idx] != v) {
			idx--
		}
		if idx >= len(counts) {
			idx = len(counts) - 1
		}
		counts[idx]++
		n++
	}
	if n == 0 {
		return nil
	}
	for i := range counts {
		counts[i] /= float64(n)
	}
	return counts
}

// DiscreteDistribution returns the relative frequency of each distinct
// value in samples, with values rounded to the nearest multiple of quantum
// (use 0.5 for the paper's score scales; quantum <= 0 keeps raw values).
func DiscreteDistribution(samples []float64, quantum float64) map[float64]float64 {
	counts := make(map[float64]float64)
	n := 0
	for _, v := range samples {
		if math.IsNaN(v) {
			continue
		}
		if quantum > 0 {
			v = math.Round(v/quantum) * quantum
		}
		counts[v]++
		n++
	}
	if n == 0 {
		return counts
	}
	for k := range counts {
		counts[k] /= float64(n)
	}
	return counts
}
