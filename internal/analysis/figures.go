package analysis

import (
	"math"
	"time"

	"repro/internal/catalog"
	"repro/internal/tsdb"
)

// ifKeyOf maps a placement-score series to its advisor (interruption-free)
// series: the advisor dataset is region-granular.
func ifKeyOf(k tsdb.SeriesKey) tsdb.SeriesKey {
	return tsdb.SeriesKey{Dataset: tsdb.DatasetInterruptFree, Type: k.Type, Region: k.Region}
}

// priceKeyOf maps a placement-score series to its price series.
func priceKeyOf(k tsdb.SeriesKey) tsdb.SeriesKey {
	return tsdb.SeriesKey{Dataset: tsdb.DatasetPrice, Type: k.Type, Region: k.Region, AZ: k.AZ}
}

// DailyClassMeans computes the Figure 3 heatmap: for each instance class, a
// per-day mean of the dataset's value over all of the class's series,
// time-weighted within each day. days entries per class; missing data is
// NaN.
func DailyClassMeans(db *tsdb.DB, cat *catalog.Catalog, dataset string, start time.Time, days int) map[catalog.Class][]float64 {
	out := make(map[catalog.Class][]float64, len(catalog.Classes))
	type acc struct {
		sum float64
		n   int
	}
	accs := make([]map[catalog.Class]*acc, days)
	for d := range accs {
		accs[d] = make(map[catalog.Class]*acc)
	}
	for _, k := range db.Keys(tsdb.KeyFilter{Dataset: dataset}) {
		t, ok := cat.Type(k.Type)
		if !ok {
			continue
		}
		for d := 0; d < days; d++ {
			from := start.Add(time.Duration(d) * 24 * time.Hour)
			mean, ok, err := db.WindowMean(k, from, from.Add(24*time.Hour))
			if err != nil || !ok {
				continue
			}
			a := accs[d][t.Class]
			if a == nil {
				a = &acc{}
				accs[d][t.Class] = a
			}
			a.sum += mean
			a.n++
		}
	}
	for _, cl := range catalog.Classes {
		row := make([]float64, days)
		for d := 0; d < days; d++ {
			if a := accs[d][cl]; a != nil && a.n > 0 {
				row[d] = a.sum / float64(a.n)
			} else {
				row[d] = math.NaN()
			}
		}
		out[cl] = row
	}
	return out
}

// RegionClassMeans computes the Figure 4 heatmap: mean dataset value per
// (class, region) over the window. Cells with no supporting types are NaN
// (the figure's "NA" marks).
func RegionClassMeans(db *tsdb.DB, cat *catalog.Catalog, dataset string, from, to time.Time) map[catalog.Class]map[string]float64 {
	type acc struct {
		sum float64
		n   int
	}
	accs := make(map[catalog.Class]map[string]*acc)
	for _, k := range db.Keys(tsdb.KeyFilter{Dataset: dataset}) {
		t, ok := cat.Type(k.Type)
		if !ok {
			continue
		}
		mean, ok, err := db.WindowMean(k, from, to)
		if err != nil || !ok {
			continue
		}
		m := accs[t.Class]
		if m == nil {
			m = make(map[string]*acc)
			accs[t.Class] = m
		}
		a := m[k.Region]
		if a == nil {
			a = &acc{}
			m[k.Region] = a
		}
		a.sum += mean
		a.n++
	}
	out := make(map[catalog.Class]map[string]float64)
	for _, cl := range catalog.Classes {
		row := make(map[string]float64, cat.NumRegions())
		for _, r := range cat.Regions() {
			if a := accs[cl][r.Code]; a != nil && a.n > 0 {
				row[r.Code] = a.sum / float64(a.n)
			} else {
				row[r.Code] = math.NaN()
			}
		}
		out[cl] = row
	}
	return out
}

// SizeMeanRow is one Figure 5 row: an instance size with its mean placement
// and interruption-free scores and the number of instance types of that
// size.
type SizeMeanRow struct {
	Size     catalog.Size
	MeanSPS  float64
	MeanIF   float64
	NumTypes int
}

// SizeMeans computes Figure 5: scores grouped by instance size, restricted
// to sizes with more than minTypes types (the paper uses 10), ordered small
// to large.
func SizeMeans(db *tsdb.DB, cat *catalog.Catalog, from, to time.Time, minTypes int) []SizeMeanRow {
	spsSum := make(map[catalog.Size]float64)
	spsN := make(map[catalog.Size]int)
	ifSum := make(map[catalog.Size]float64)
	ifN := make(map[catalog.Size]int)
	typesOf := make(map[catalog.Size]map[string]bool)

	add := func(dataset string, sum map[catalog.Size]float64, n map[catalog.Size]int) {
		for _, k := range db.Keys(tsdb.KeyFilter{Dataset: dataset}) {
			t, ok := cat.Type(k.Type)
			if !ok {
				continue
			}
			mean, ok, err := db.WindowMean(k, from, to)
			if err != nil || !ok {
				continue
			}
			sum[t.Size] += mean
			n[t.Size]++
			m := typesOf[t.Size]
			if m == nil {
				m = make(map[string]bool)
				typesOf[t.Size] = m
			}
			m[t.Name] = true
		}
	}
	add(tsdb.DatasetPlacementScore, spsSum, spsN)
	add(tsdb.DatasetInterruptFree, ifSum, ifN)

	var rows []SizeMeanRow
	for size, types := range typesOf {
		if len(types) <= minTypes {
			continue
		}
		row := SizeMeanRow{Size: size, NumTypes: len(types), MeanSPS: math.NaN(), MeanIF: math.NaN()}
		if n := spsN[size]; n > 0 {
			row.MeanSPS = spsSum[size] / float64(n)
		}
		if n := ifN[size]; n > 0 {
			row.MeanIF = ifSum[size] / float64(n)
		}
		rows = append(rows, row)
	}
	sortRows(rows)
	return rows
}

func sortRows(rows []SizeMeanRow) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && catalog.SizeRank(rows[j].Size) < catalog.SizeRank(rows[j-1].Size); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

// ValueDistribution computes Table 2: the relative frequency of each
// distinct value of a dataset, sampled on a uniform grid across the window.
func ValueDistribution(db *tsdb.DB, dataset string, from, to time.Time, step time.Duration) map[float64]float64 {
	var samples []float64
	for _, k := range db.Keys(tsdb.KeyFilter{Dataset: dataset}) {
		g, err := db.Grid(k, from, to, step)
		if err != nil {
			continue
		}
		samples = append(samples, g...)
	}
	return DiscreteDistribution(samples, 0.5)
}

// CorrelationSets holds the per-pool Pearson coefficients of the three
// dataset pairings of Figure 8.
type CorrelationSets struct {
	SPSvsIF    []float64
	IFvsPrice  []float64
	SPSvsPrice []float64
}

// Correlations computes the Figure 8 data: for every placement-score series
// (one per pool), the Pearson correlation of its grid samples against the
// pool's interruption-free and price series over the window.
func Correlations(db *tsdb.DB, from, to time.Time, step time.Duration) CorrelationSets {
	var out CorrelationSets
	for _, k := range db.Keys(tsdb.KeyFilter{Dataset: tsdb.DatasetPlacementScore}) {
		sps, err1 := db.Grid(k, from, to, step)
		ifs, err2 := db.Grid(ifKeyOf(k), from, to, step)
		price, err3 := db.Grid(priceKeyOf(k), from, to, step)
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		if r, ok := Pearson(sps, ifs); ok {
			out.SPSvsIF = append(out.SPSvsIF, r)
		}
		if r, ok := Pearson(ifs, price); ok {
			out.IFvsPrice = append(out.IFvsPrice, r)
		}
		if r, ok := Pearson(sps, price); ok {
			out.SPSvsPrice = append(out.SPSvsPrice, r)
		}
	}
	return out
}

// ScoreDifferenceHistogram computes Figure 9: the distribution of the
// absolute difference between a pool's placement score and its
// interruption-free score, sampled on a grid, in 0.5 steps from 0.0 to 2.0.
// The returned map keys are 0, 0.5, 1, 1.5, 2 and values are fractions.
func ScoreDifferenceHistogram(db *tsdb.DB, from, to time.Time, step time.Duration) map[float64]float64 {
	var diffs []float64
	for _, k := range db.Keys(tsdb.KeyFilter{Dataset: tsdb.DatasetPlacementScore}) {
		sps, err1 := db.Grid(k, from, to, step)
		ifs, err2 := db.Grid(ifKeyOf(k), from, to, step)
		if err1 != nil || err2 != nil {
			continue
		}
		for i := range sps {
			if math.IsNaN(sps[i]) || math.IsNaN(ifs[i]) {
				continue
			}
			diffs = append(diffs, math.Abs(sps[i]-ifs[i]))
		}
	}
	return DiscreteDistribution(diffs, 0.5)
}

// UpdateIntervalCDF computes one line of Figure 10: the empirical CDF of
// hours between value changes for every series of the dataset.
func UpdateIntervalCDF(db *tsdb.DB, dataset string) CDF {
	var hours []float64
	for _, k := range db.Keys(tsdb.KeyFilter{Dataset: dataset}) {
		ivs, err := db.ChangeIntervals(k)
		if err != nil {
			continue
		}
		for _, iv := range ivs {
			hours = append(hours, iv.Hours())
		}
	}
	return NewCDF(hours)
}

// OverallMean returns the grand mean of a dataset's series means over the
// window (the paper's "average spot placement score across all the instance
// types is 2.8" style numbers).
func OverallMean(db *tsdb.DB, dataset string, from, to time.Time) float64 {
	var means []float64
	for _, k := range db.Keys(tsdb.KeyFilter{Dataset: dataset}) {
		if m, ok, err := db.WindowMean(k, from, to); err == nil && ok {
			means = append(means, m)
		}
	}
	return Mean(means)
}

// ClassMeans returns the per-class mean of a dataset over the window.
func ClassMeans(db *tsdb.DB, cat *catalog.Catalog, dataset string, from, to time.Time) map[catalog.Class]float64 {
	sums := make(map[catalog.Class]float64)
	ns := make(map[catalog.Class]int)
	for _, k := range db.Keys(tsdb.KeyFilter{Dataset: dataset}) {
		t, ok := cat.Type(k.Type)
		if !ok {
			continue
		}
		if m, ok, err := db.WindowMean(k, from, to); err == nil && ok {
			sums[t.Class] += m
			ns[t.Class]++
		}
	}
	out := make(map[catalog.Class]float64)
	for cl, s := range sums {
		out[cl] = s / float64(ns[cl])
	}
	return out
}
