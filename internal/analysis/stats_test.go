package analysis

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean([]float64{1, math.NaN(), 3}); got != 2 {
		t.Errorf("Mean with NaN = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := Median(xs); got != 2.5 {
		t.Errorf("median = %v", got)
	}
	if got := Quantile([]float64{1, 2, 3, 4, 5}, 0.25); got != 2 {
		t.Errorf("q25 = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
}

func TestPearsonKnownValues(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if r, ok := Pearson(x, yPos); !ok || !almostEq(r, 1, 1e-12) {
		t.Errorf("perfect positive r = %v, %v", r, ok)
	}
	if r, ok := Pearson(x, yNeg); !ok || !almostEq(r, -1, 1e-12) {
		t.Errorf("perfect negative r = %v, %v", r, ok)
	}
	// Hand-computed: x={1,2,3}, y={1,3,2} -> r = 0.5.
	if r, ok := Pearson([]float64{1, 2, 3}, []float64{1, 3, 2}); !ok || !almostEq(r, 0.5, 1e-12) {
		t.Errorf("r = %v, want 0.5", r)
	}
}

func TestPearsonDegenerateCases(t *testing.T) {
	if _, ok := Pearson([]float64{1, 2}, []float64{1, 2, 3}); ok {
		t.Error("length mismatch accepted")
	}
	if _, ok := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); ok {
		t.Error("zero variance accepted")
	}
	if _, ok := Pearson([]float64{1, 2}, []float64{3, 4}); ok {
		t.Error("n<3 accepted")
	}
	// NaN pairs skipped: effective n drops below 3.
	nan := math.NaN()
	if _, ok := Pearson([]float64{1, nan, 2}, []float64{1, 5, 2}); ok {
		t.Error("NaN-reduced n<3 accepted")
	}
	if r, ok := Pearson([]float64{1, nan, 2, 3, 4}, []float64{2, 9, 4, 6, 8}); !ok || !almostEq(r, 1, 1e-12) {
		t.Errorf("NaN-skipping r = %v, %v", r, ok)
	}
}

func TestPearsonBoundsProperty(t *testing.T) {
	rng := simrand.New(7)
	f := func(seed uint16) bool {
		r := rng.StreamN("p", int(seed))
		n := 3 + r.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.Normal(0, 1)
			y[i] = r.Normal(0, 1)
		}
		if rr, ok := Pearson(x, y); ok {
			return rr >= -1-1e-9 && rr <= 1+1e-9
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, math.NaN()})
	if c.N() != 4 {
		t.Errorf("N = %d, want 4 (NaN dropped)", c.N())
	}
	if got := c.FractionBelow(0.5); got != 0 {
		t.Errorf("F(0.5) = %v", got)
	}
	if got := c.FractionBelow(2); got != 0.75 {
		t.Errorf("F(2) = %v, want 0.75", got)
	}
	if got := c.FractionBelow(10); got != 1 {
		t.Errorf("F(10) = %v", got)
	}
	if got := c.Quantile(0.5); !almostEq(got, 2, 1e-12) {
		t.Errorf("median = %v", got)
	}
	if !math.IsNaN(NewCDF(nil).FractionBelow(1)) {
		t.Error("empty CDF should yield NaN")
	}
}

func TestCDFPoints(t *testing.T) {
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = float64(i)
	}
	c := NewCDF(samples)
	pts := c.Points(50)
	if len(pts) < 40 || len(pts) > 60 {
		t.Errorf("thinned points = %d", len(pts))
	}
	// Monotone in both coordinates, last point reaches 1.
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] || pts[i][1] < pts[i-1][1] {
			t.Fatal("CDF points not monotone")
		}
	}
	if pts[len(pts)-1][1] != 1 {
		t.Error("last CDF point fraction != 1")
	}
	if NewCDF(nil).Points(10) != nil {
		t.Error("empty CDF should have no points")
	}
}

func TestHistogram(t *testing.T) {
	edges := []float64{0, 1, 2, 3}
	h := Histogram([]float64{0.5, 1.5, 1.7, 2.5}, edges)
	want := []float64{0.25, 0.5, 0.25}
	for i := range want {
		if !almostEq(h[i], want[i], 1e-12) {
			t.Errorf("bin %d = %v, want %v", i, h[i], want[i])
		}
	}
	// Out-of-range samples clamp into edge bins.
	h = Histogram([]float64{-5, 10}, edges)
	if h[0] != 0.5 || h[2] != 0.5 {
		t.Errorf("clamping failed: %v", h)
	}
	if Histogram(nil, edges) != nil {
		t.Error("empty histogram should be nil")
	}
	if Histogram([]float64{1}, []float64{0}) != nil {
		t.Error("too few edges should be nil")
	}
}

func TestDiscreteDistribution(t *testing.T) {
	d := DiscreteDistribution([]float64{3, 3, 2.49, 1.0}, 0.5)
	if !almostEq(d[3.0], 0.5, 1e-12) {
		t.Errorf("P(3.0) = %v", d[3.0])
	}
	if !almostEq(d[2.5], 0.25, 1e-12) {
		t.Errorf("P(2.5) = %v (2.49 rounds to 2.5)", d[2.5])
	}
	if !almostEq(d[1.0], 0.25, 1e-12) {
		t.Errorf("P(1.0) = %v", d[1.0])
	}
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if !almostEq(sum, 1, 1e-12) {
		t.Errorf("distribution sums to %v", sum)
	}
}
