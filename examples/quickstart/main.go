// Quickstart: build a simulated cloud, run the SpotLake collector for two
// simulated days, and query the archive through the Go API — the minimal
// end-to-end tour of the library.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/archive"
	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/collector"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

func main() {
	log.SetFlags(0)

	// 1. A simulated cloud: 17 regions, 63 AZs, and a proportional sample
	//    of the 547 instance types.
	cat := catalog.Sample(0.10)
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, 7, cloudsim.DefaultParams())
	fmt.Printf("cloud: %d instance types, %d regions, %d AZs, %d pools\n",
		cat.NumTypes(), cat.NumRegions(), cat.NumAZs(), len(cat.Pools()))

	// 2. The SpotLake collector: bin-packed placement-score queries across
	//    accounts, advisor scraping, price sampling — every 10 minutes.
	db, err := tsdb.Open("")
	if err != nil {
		log.Fatal(err)
	}
	col, err := collector.New(cloud, db, collector.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collector: %d optimized queries (vs %d naive) across %d accounts\n",
		len(col.Plan().Queries), col.Plan().NaiveQueries, col.Accounts())

	if err := col.Run(48 * time.Hour); err != nil {
		log.Fatal(err)
	}
	st := col.Stats()
	fmt.Printf("collected 2 simulated days: %d queries issued, %d points stored\n",
		st.QueriesIssued, st.PointsStored)

	// 3. Query the archive like a SpotLake user.
	svc := archive.NewService(db, cat)
	meta := svc.Meta()
	fmt.Printf("archive: %d series, %d points\n", meta.Schema.SeriesCount, meta.Schema.PointCount)

	tn := cat.TypesOfClass(catalog.ClassM)[0].Name
	results, err := svc.Query(archive.QueryRequest{
		Dataset: tsdb.DatasetPlacementScore,
		Type:    tn,
		Region:  "us-east-1",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplacement score history for %s in us-east-1:\n", tn)
	for _, sr := range results {
		fmt.Printf("  %s: %d change points, latest %.0f\n",
			sr.Key.AZ, len(sr.Points), sr.Points[len(sr.Points)-1].Value)
	}

	latest, err := svc.Latest(archive.QueryRequest{
		Dataset: tsdb.DatasetInterruptFree,
		Type:    tn,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncurrent interruption-free scores for %s:\n", tn)
	for _, e := range latest {
		fmt.Printf("  %-14s %.1f\n", e.Key.Region, e.Value)
	}
}
