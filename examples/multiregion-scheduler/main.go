// Multi-region GPU scheduler: the DeepSpotCloud-style workload from the
// paper's motivation. A training job needs GPU spot instances; the
// scheduler uses the SpotLake archive to pick pools globally — requiring a
// high placement score AND a high interruption-free score (the paper's
// Section 5.4 recommendation) — and compares the outcome against a naive
// strategy that only looks at price in a single home region.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/archive"
	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/collector"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

type candidate struct {
	pool    catalog.Pool
	sps     float64
	ifScore float64
	price   float64
}

func main() {
	log.SetFlags(0)

	cat := catalog.Sample(0.25)
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, 4242, cloudsim.DefaultParams())
	db, err := tsdb.Open("")
	if err != nil {
		log.Fatal(err)
	}
	cfg := collector.DefaultConfig()
	cfg.ScoreInterval = 30 * time.Minute
	cfg.AdvisorInterval = 30 * time.Minute
	cfg.PriceInterval = 30 * time.Minute
	col, err := collector.New(cloud, db, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bootstrapping SpotLake archive (7 simulated days)...")
	if err := col.Start(); err != nil {
		log.Fatal(err)
	}
	clk.RunFor(7 * 24 * time.Hour)

	svc := archive.NewService(db, cat)

	// Enumerate live GPU pools with their current archive signals.
	var candidates []candidate
	for _, cl := range []catalog.Class{catalog.ClassG, catalog.ClassP} {
		for _, t := range cat.TypesOfClass(cl) {
			for _, p := range cat.PoolsOfType(t.Name) {
				sps, ok1, _ := db.ValueAt(tsdb.SeriesKey{Dataset: tsdb.DatasetPlacementScore, Type: p.Type, Region: p.Region, AZ: p.AZ}, clk.Now())
				ifs, ok2, _ := db.ValueAt(tsdb.SeriesKey{Dataset: tsdb.DatasetInterruptFree, Type: p.Type, Region: p.Region}, clk.Now())
				price, ok3, _ := db.ValueAt(tsdb.SeriesKey{Dataset: tsdb.DatasetPrice, Type: p.Type, Region: p.Region, AZ: p.AZ}, clk.Now())
				if ok1 && ok2 && ok3 {
					candidates = append(candidates, candidate{p, sps, ifs, price})
				}
			}
		}
	}
	fmt.Printf("GPU candidate pools: %d (archive holds %d series)\n", len(candidates), svc.Meta().Schema.SeriesCount)

	const workers = 6
	// SpotLake strategy: both scores high, then cheapest, spread across
	// regions (the paper's spatial-diversity recommendation).
	spotlake := pickSpotLake(candidates, workers)
	// Naive strategy: cheapest pools in the home region, ignoring scores.
	naive := pickNaive(candidates, workers, "us-east-1")

	fmt.Println("\nrunning both 6-worker training fleets for 24 simulated hours...")
	slStats := launch(cloud, cat, spotlake)
	nvStats := launch(cloud, cat, naive)
	clk.RunFor(24 * time.Hour)

	fmt.Println("\n== results after 24h ==")
	report := func(name string, reqs []*cloudsim.SpotRequest, picks []candidate) {
		fulfilled, interruptions := 0, 0
		cost := 0.0
		for i, r := range reqs {
			if len(r.Fulfillments()) > 0 {
				fulfilled++
				cost += picks[i].price * 24 // approximation: price at selection
			}
			interruptions += len(r.Interruptions())
			r.Close()
		}
		fmt.Printf("  %-9s fulfilled %d/%d workers, %d interruptions, approx $%.2f\n",
			name, fulfilled, len(reqs), interruptions, cost)
	}
	report("spotlake", slStats, spotlake)
	report("naive", nvStats, naive)
	fmt.Println("\nthe SpotLake fleet trades a little price for far fewer interruptions,")
	fmt.Println("matching the paper's H-H finding (Table 3).")
}

func pickSpotLake(cands []candidate, n int) []candidate {
	var good []candidate
	for _, c := range cands {
		if c.sps >= 3 && c.ifScore >= 2.5 {
			good = append(good, c)
		}
	}
	sort.Slice(good, func(i, j int) bool { return good[i].price < good[j].price })
	var picks []candidate
	usedRegion := map[string]int{}
	for _, c := range good {
		if len(picks) == n {
			break
		}
		if usedRegion[c.pool.Region] >= 2 { // spatial diversity
			continue
		}
		usedRegion[c.pool.Region]++
		picks = append(picks, c)
	}
	// Top up if diversity constraint left slots open.
	for _, c := range good {
		if len(picks) == n {
			break
		}
		picks = append(picks, c)
	}
	return picks
}

func pickNaive(cands []candidate, n int, region string) []candidate {
	var local []candidate
	for _, c := range cands {
		if c.pool.Region == region {
			local = append(local, c)
		}
	}
	sort.Slice(local, func(i, j int) bool { return local[i].price < local[j].price })
	if len(local) > n {
		local = local[:n]
	}
	return local
}

func launch(cloud *cloudsim.Cloud, cat *catalog.Catalog, picks []candidate) []*cloudsim.SpotRequest {
	var reqs []*cloudsim.SpotRequest
	for _, c := range picks {
		od, _ := cat.OnDemandPrice(c.pool.Type, c.pool.Region)
		r, err := cloud.Submit(cloudsim.SpotRequestSpec{
			Type: c.pool.Type, AZ: c.pool.AZ, BidUSD: od, Persistent: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  requested %-18s in %-14s (sps %.0f, if %.1f, $%.3f/h)\n",
			c.pool.Type, c.pool.AZ, c.sps, c.ifScore, c.price)
		reqs = append(reqs, r)
	}
	return reqs
}
