// Batch processor: a SpotOn-style bag-of-tasks service (the paper's
// related work [47]) built on the reproduction stack. A queue of
// independent tasks runs on spot instances; interrupted tasks are re-queued
// and restarted elsewhere. The scheduler compares two pool-selection
// policies — archive-informed (both scores high, as Section 5.4
// recommends) versus cheapest-price — and reports makespan, interruption
// count, and cost against an on-demand baseline.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/collector"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

const (
	numTasks     = 40
	taskDuration = 45 * time.Minute
	fleetSize    = 8
)

type poolChoice struct {
	pool  catalog.Pool
	price float64
}

func main() {
	log.SetFlags(0)

	clk := simclock.NewAtEpoch()
	cat := catalog.Sample(0.15)
	cloud := cloudsim.New(cat, clk, 777, cloudsim.DefaultParams())
	db, err := tsdb.Open("")
	if err != nil {
		log.Fatal(err)
	}
	cfg := collector.DefaultConfig()
	cfg.ScoreInterval = 30 * time.Minute
	cfg.AdvisorInterval = 30 * time.Minute
	cfg.PriceInterval = 30 * time.Minute
	col, err := collector.New(cloud, db, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bootstrapping archive (3 simulated days)...")
	if err := col.Start(); err != nil {
		log.Fatal(err)
	}
	clk.RunFor(3 * 24 * time.Hour)

	informed := selectPools(cloud, cat, db, clk, true)
	cheapest := selectPools(cloud, cat, db, clk, false)

	fmt.Printf("\nrunning %d tasks of %v on %d-instance fleets:\n", numTasks, taskDuration, fleetSize)
	a := runBag(cloud, cat, clk, informed, "archive-informed")
	b := runBag(cloud, cat, clk, cheapest, "cheapest-price")

	fmt.Println("\n== results ==")
	report := func(name string, r bagResult) {
		fmt.Printf("  %-17s makespan %6.1f h   interruptions %2d   retries %2d   spot cost $%.2f\n",
			name, r.makespan.Hours(), r.interruptions, r.retries, r.cost)
	}
	report("archive-informed", a)
	report("cheapest-price", b)

	// On-demand baseline: no interruptions, fleetSize instances at OD price.
	odPrice := 0.0
	for _, c := range informed {
		p, _ := cat.OnDemandPrice(c.pool.Type, c.pool.Region)
		odPrice += p
	}
	serial := time.Duration(numTasks) * taskDuration / fleetSize
	fmt.Printf("  %-17s makespan %6.1f h   interruptions  0   retries  0   cost $%.2f\n",
		"on-demand", serial.Hours(), odPrice/float64(fleetSize)*serial.Hours()*fleetSize)
	fmt.Println("\nthe archive-informed fleet finishes with fewer interruptions at spot")
	fmt.Println("prices; the cheapest fleet pays for its interruptions with retries.")
}

// selectPools picks fleetSize m/c/r-class xlarge-or-smaller pools. With
// useArchive it requires SPS high and IF >= 2.5 from the archive (the
// Section 5.4 recommendation); otherwise it takes the cheapest pools
// regardless of signals.
func selectPools(cloud *cloudsim.Cloud, cat *catalog.Catalog, db *tsdb.DB, clk *simclock.Clock, useArchive bool) []poolChoice {
	var candidates []poolChoice
	for _, cl := range []catalog.Class{catalog.ClassM, catalog.ClassC, catalog.ClassR} {
		for _, t := range cat.TypesOfClass(cl) {
			if catalog.SizeRank(t.Size) > catalog.SizeRank("xlarge") {
				continue
			}
			for _, p := range cat.PoolsOfType(t.Name) {
				price, ok, _ := db.ValueAt(tsdb.SeriesKey{Dataset: tsdb.DatasetPrice, Type: p.Type, Region: p.Region, AZ: p.AZ}, clk.Now())
				if !ok {
					continue
				}
				if useArchive {
					sps, ok1, _ := db.ValueAt(tsdb.SeriesKey{Dataset: tsdb.DatasetPlacementScore, Type: p.Type, Region: p.Region, AZ: p.AZ}, clk.Now())
					ifs, ok2, _ := db.ValueAt(tsdb.SeriesKey{Dataset: tsdb.DatasetInterruptFree, Type: p.Type, Region: p.Region}, clk.Now())
					if !ok1 || !ok2 || sps < 3 || ifs < 2.5 {
						continue
					}
				}
				candidates = append(candidates, poolChoice{pool: p, price: price})
			}
		}
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].price != candidates[j].price {
			return candidates[i].price < candidates[j].price
		}
		return candidates[i].pool.String() < candidates[j].pool.String()
	})
	if len(candidates) > fleetSize {
		candidates = candidates[:fleetSize]
	}
	return candidates
}

type bagResult struct {
	makespan      time.Duration
	interruptions int
	retries       int
	cost          float64
}

// runBag executes the bag of tasks on the given pools with restart-on-
// interruption, entirely on the simulation clock.
func runBag(cloud *cloudsim.Cloud, cat *catalog.Catalog, clk *simclock.Clock, pools []poolChoice, label string) bagResult {
	fmt.Printf("\n[%s] fleet:\n", label)
	type worker struct {
		req       *cloudsim.SpotRequest
		choice    poolChoice
		taskStart time.Time
		busy      bool
	}
	var workers []*worker
	for _, c := range pools {
		od, _ := cat.OnDemandPrice(c.pool.Type, c.pool.Region)
		req, err := cloud.Submit(cloudsim.SpotRequestSpec{Type: c.pool.Type, AZ: c.pool.AZ, BidUSD: od, Persistent: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s %-16s $%.4f/h\n", c.pool.Type, c.pool.AZ, c.price)
		workers = append(workers, &worker{req: req, choice: c})
	}

	res := bagResult{}
	pending := numTasks
	done := 0
	start := clk.Now()
	seenIntr := make([]int, len(workers))

	for done < numTasks {
		clk.RunFor(time.Minute)
		for i, w := range workers {
			// Interruption handling: a running task on an interrupted
			// worker goes back to the queue.
			if n := len(w.req.Interruptions()); n > seenIntr[i] {
				res.interruptions += n - seenIntr[i]
				seenIntr[i] = n
				if w.busy {
					w.busy = false
					pending++
					res.retries++
				}
			}
			if w.req.Status() != cloudsim.StatusFulfilled {
				continue
			}
			if w.busy {
				if clk.Now().Sub(w.taskStart) >= taskDuration {
					w.busy = false
					done++
					res.cost += w.choice.price * taskDuration.Hours()
				}
				continue
			}
			if pending > 0 {
				pending--
				w.busy = true
				w.taskStart = clk.Now()
			}
		}
		if clk.Now().Sub(start) > 7*24*time.Hour {
			fmt.Printf("  [%s] giving up after a simulated week (%d/%d done)\n", label, done, numTasks)
			break
		}
	}
	res.makespan = clk.Now().Sub(start)
	for _, w := range workers {
		w.req.Cancel()
	}
	return res
}
