// Interruption predictor: the paper's Section 5.5 use case. Collect a
// month of history, run the real-request experiment to obtain ground-truth
// outcomes, train a random forest on the historical features, and compare
// it against the three current-value heuristics — then use the model to
// rank live pools for a new deployment.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/experiment"
	"repro/internal/mlearn"
	"repro/internal/repro"
)

func main() {
	log.SetFlags(0)

	// Collect history and run the labelled experiment via the repro
	// pipeline (this is exactly the Table 4 study).
	opt := repro.DefaultTable4Options()
	opt.CollectDays = 21
	opt.SampleFrac = 0.15
	fmt.Println("collecting 21 days of history and running the 24h outcome experiment...")
	col, err := repro.Collect(repro.CollectOptions{
		Seed: opt.Seed, Days: opt.CollectDays, SampleFrac: opt.SampleFrac, Interval: opt.Interval,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := experiment.DefaultConfig()
	cfg.Archive = col.DB
	cfg.Seed = opt.Seed
	res, err := experiment.Run(col.Cloud, cfg)
	if err != nil {
		log.Fatal(err)
	}

	var X [][]float64
	var y []int
	var cases []experiment.Case
	for _, c := range res.Cases {
		if c.Features != nil {
			X = append(X, c.Features)
			y = append(y, int(c.Outcome))
			cases = append(cases, c)
		}
	}
	fmt.Printf("dataset: %d cases, %d features (%v...)\n", len(X), len(experiment.FeatureNames), experiment.FeatureNames[:3])

	trainIdx, testIdx := mlearn.TrainTestSplit(len(X), 0.3, 99)
	trX, trY := mlearn.Subset(X, y, trainIdx)
	teX, teY := mlearn.Subset(X, y, testIdx)
	forest, err := mlearn.TrainForest(trX, trY, experiment.NumOutcomes, mlearn.ForestConfig{NumTrees: 100, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}

	// Compare against the current-value heuristics on held-out cases.
	fmt.Println("\n== held-out prediction accuracy ==")
	rfPred := forest.PredictAll(teX)
	heur := func(name string, predict func(experiment.Case) experiment.Outcome) {
		pred := make([]int, len(testIdx))
		for i, idx := range testIdx {
			pred[i] = int(predict(cases[idx]))
		}
		fmt.Printf("  %-22s accuracy %.2f  macro-F1 %.2f\n", name,
			mlearn.Accuracy(teY, pred), mlearn.MacroF1(teY, pred, experiment.NumOutcomes))
	}
	heur("current IF score", func(c experiment.Case) experiment.Outcome { return experiment.PredictByIF(c.IF) })
	heur("current SPS", func(c experiment.Case) experiment.Outcome { return experiment.PredictBySPS(c.SPS) })
	heur("current cost savings", func(c experiment.Case) experiment.Outcome { return experiment.PredictByCostSave(c.Savings) })
	fmt.Printf("  %-22s accuracy %.2f  macro-F1 %.2f   <- uses SpotLake history\n", "random forest",
		mlearn.Accuracy(teY, rfPred), mlearn.MacroF1(teY, rfPred, experiment.NumOutcomes))

	// Deploy the model: rank the held-out pools by predicted probability
	// of running a full day uninterrupted.
	fmt.Println("\n== top pools by predicted no-interruption probability ==")
	type ranked struct {
		c experiment.Case
		p float64
	}
	var rankedPools []ranked
	for _, idx := range testIdx {
		p := forest.Proba(X[idx])[int(experiment.OutcomeNoInterrupt)]
		rankedPools = append(rankedPools, ranked{cases[idx], p})
	}
	sort.Slice(rankedPools, func(i, j int) bool { return rankedPools[i].p > rankedPools[j].p })
	show := 8
	if len(rankedPools) < show {
		show = len(rankedPools)
	}
	for _, r := range rankedPools[:show] {
		fmt.Printf("  %-18s %-14s p(NoInterrupt)=%.2f  actual: %s\n",
			r.c.Pool.Type, r.c.Pool.AZ, r.p, r.c.Outcome)
	}
}
