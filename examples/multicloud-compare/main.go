// Multi-cloud comparison: the paper's Section 7 vision. Collect spot
// datasets from AWS, Azure, and Google Cloud into one archive keyed by a
// shared timestamp, then answer the cross-vendor questions no single
// vendor's console can: who is cheapest for a given compute shape, how
// fresh is each vendor's data, and who even tells you about interruptions?
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/azuresim"
	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/collector"
	"repro/internal/gcpsim"
	"repro/internal/multicloud"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

func main() {
	log.SetFlags(0)

	// One clock drives all three vendors: every collection tick lands at
	// the same instant — the "timestamp as global key" of Section 7.
	clk := simclock.NewAtEpoch()
	cat := catalog.Sample(0.10)
	aws := cloudsim.New(cat, clk, 99, cloudsim.DefaultParams())
	azure := azuresim.New(clk, 99)
	gcp := gcpsim.New(clk, 99)

	db, err := tsdb.Open("")
	if err != nil {
		log.Fatal(err)
	}
	awsCfg := collector.DefaultConfig()
	awsCfg.ScoreInterval = 30 * time.Minute
	awsCfg.AdvisorInterval = 30 * time.Minute
	awsCfg.PriceInterval = 30 * time.Minute
	awsCol, err := collector.New(aws, db, awsCfg)
	if err != nil {
		log.Fatal(err)
	}
	mc, err := multicloud.New(clk, db, multicloud.Config{Interval: 30 * time.Minute}, awsCol, azure, gcp)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("collecting 14 simulated days from AWS + Azure + GCP...")
	if err := mc.Run(14 * 24 * time.Hour); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive: %d series, %d points\n\n", db.SeriesCount(), db.PointCount())

	// Who is cheapest for an 8-vCPU / 32-GiB worker right now?
	offers := multicloud.Offers(cat, azure, gcp)
	fmt.Println("== cheapest 8 vCPU / 32 GiB spot offers across vendors ==")
	for _, o := range multicloud.CheapestAt(db, offers, multicloud.ShapeQuery{MinVCPU: 8, MinMemoryGiB: 32}, clk.Now(), 10) {
		stab := "n/a"
		if !math.IsNaN(o.Stability) {
			stab = fmt.Sprintf("%.1f", o.Stability)
		}
		fmt.Printf("  %-6s %-20s %-16s $%.4f/h  stability %s\n",
			o.Vendor, o.Name, o.Region, o.SpotUSD, stab)
	}

	// And for a GPU trainer?
	fmt.Println("\n== cheapest GPU spot offers across vendors ==")
	for _, o := range multicloud.CheapestAt(db, offers, multicloud.ShapeQuery{MinVCPU: 4, GPU: true}, clk.Now(), 8) {
		stab := "n/a"
		if !math.IsNaN(o.Stability) {
			stab = fmt.Sprintf("%.1f", o.Stability)
		}
		fmt.Printf("  %-6s %-20s %-16s $%.4f/h  stability %s\n",
			o.Vendor, o.Name, o.Region, o.SpotUSD, stab)
	}

	// What does each vendor actually publish, and how fresh is it?
	fmt.Println("\n== vendor dataset comparison (the Section 7 asymmetry) ==")
	fmt.Printf("  %-7s %12s %16s %22s %12s\n", "vendor", "price series", "median savings", "median price change", "stability?")
	for _, s := range multicloud.Summary(db) {
		stab := "no"
		if s.HasStabilityData {
			stab = "yes"
		}
		change := "none in window"
		if !math.IsNaN(s.MedianPriceChangeHours) {
			change = fmt.Sprintf("%.0f h", s.MedianPriceChangeHours)
		}
		fmt.Printf("  %-7s %12d %15.0f%% %22s %12s\n",
			s.Vendor, s.PriceSeries, s.MedianSavingsPct, change, stab)
	}
	fmt.Println("\nAWS exposes availability + interruption + price; Azure exposes price +")
	fmt.Println("portal-only eviction bands; GCP exposes a sticky portal price and nothing")
	fmt.Println("else — which is exactly why a cross-vendor archive is useful.")
}
