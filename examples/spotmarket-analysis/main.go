// Spot market analysis: the paper's Section 5 study as a library consumer
// would run it — collect a month of the three spot datasets, then ask the
// questions the paper asks: how are the scores distributed (Table 2), which
// classes and regions are healthy (Figures 3-4), does size matter
// (Figure 5), do the datasets agree (Figures 8-9), and how fresh is each
// dataset (Figure 10)?
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/analysis"
	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/collector"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

func main() {
	log.SetFlags(0)

	cat := catalog.Sample(0.10)
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, 1234, cloudsim.DefaultParams())
	db, err := tsdb.Open("")
	if err != nil {
		log.Fatal(err)
	}
	cfg := collector.DefaultConfig()
	cfg.ScoreInterval = 30 * time.Minute
	cfg.AdvisorInterval = 30 * time.Minute
	cfg.PriceInterval = 30 * time.Minute
	col, err := collector.New(cloud, db, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("collecting 30 simulated days of spot datasets...")
	if err := col.Run(30 * 24 * time.Hour); err != nil {
		log.Fatal(err)
	}
	from, to := simclock.Epoch, clk.Now()

	// How are the scores distributed? (Table 2)
	fmt.Println("\n== score value distribution ==")
	sps := analysis.ValueDistribution(db, tsdb.DatasetPlacementScore, from, to, 2*time.Hour)
	ifd := analysis.ValueDistribution(db, tsdb.DatasetInterruptFree, from, to, 2*time.Hour)
	for _, v := range []float64{3.0, 2.5, 2.0, 1.5, 1.0} {
		fmt.Printf("  score %.1f: placement %5.1f%%   interruption-free %5.1f%%\n",
			v, sps[v]*100, ifd[v]*100)
	}

	// Which classes are healthy? (Figure 3)
	fmt.Println("\n== class means (placement / interruption-free) ==")
	spsMeans := analysis.ClassMeans(db, cat, tsdb.DatasetPlacementScore, from, to)
	ifMeans := analysis.ClassMeans(db, cat, tsdb.DatasetInterruptFree, from, to)
	for _, cl := range catalog.Classes {
		marker := ""
		if cl.Accelerated() {
			marker = "  <- accelerated"
		}
		fmt.Printf("  %-4s %.2f / %.2f%s\n", cl, spsMeans[cl], ifMeans[cl], marker)
	}
	fmt.Printf("  overall: %.2f / %.2f (paper: 2.80 / 2.22)\n",
		analysis.OverallMean(db, tsdb.DatasetPlacementScore, from, to),
		analysis.OverallMean(db, tsdb.DatasetInterruptFree, from, to))

	// Does size matter? (Figure 5)
	fmt.Println("\n== scores by instance size ==")
	for _, row := range analysis.SizeMeans(db, cat, from, to, 2) {
		fmt.Printf("  %-9s sps %.2f  if %.2f  (%d types)\n", row.Size, row.MeanSPS, row.MeanIF, row.NumTypes)
	}

	// Do the datasets agree? (Figures 8, 9)
	fmt.Println("\n== dataset agreement ==")
	corr := analysis.Correlations(db, from, to, 2*time.Hour)
	report := func(name string, xs []float64) {
		c := analysis.NewCDF(xs)
		fmt.Printf("  %-14s median r = %+.2f (n=%d)\n", name, c.Quantile(0.5), c.N())
	}
	report("SPS vs IF", corr.SPSvsIF)
	report("IF vs price", corr.IFvsPrice)
	report("SPS vs price", corr.SPSvsPrice)
	diff := analysis.ScoreDifferenceHistogram(db, from, to, 2*time.Hour)
	fmt.Printf("  complete contradictions (|SPS-IF| = 2.0): %.1f%% (paper 17.4%%)\n", diff[2.0]*100)

	// How fresh is each dataset? (Figure 10)
	fmt.Println("\n== hours between value changes ==")
	for _, ds := range []string{tsdb.DatasetPlacementScore, tsdb.DatasetPrice, tsdb.DatasetInterruptFree} {
		c := analysis.UpdateIntervalCDF(db, ds)
		med := math.NaN()
		if c.N() > 0 {
			med = c.Quantile(0.5)
		}
		fmt.Printf("  %-7s median %.1fh (%d changes)\n", ds, med, c.N())
	}
	fmt.Println("\nconclusion (paper Section 5.3): the three spot datasets are nearly")
	fmt.Println("uncorrelated and often contradict — which is why archiving all of them")
	fmt.Println("matters.")
}
