package bench

// Ablation benchmarks: each removes or swaps one design choice and reports
// what breaks, quantifying why the system is built the way it is.
//
//   - Query packing: naive vs first-fit-decreasing vs branch-and-bound
//     (Section 3.2's optimization is what makes collection feasible).
//   - Change-deduplicated storage vs storing every sample (the archive's
//     storage efficiency).
//   - The fresh-instance hazard boost (without it, Figure 11b's early
//     interruption medians — and the paper's H-L vs L-H ordering — vanish).
//   - History features vs current-value features for the Table 4 forest
//     (the archive's entire value proposition).

import (
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/awsapi"
	"repro/internal/binpack"
	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/collector"
	"repro/internal/experiment"
	"repro/internal/mlearn"
	"repro/internal/repro"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

func BenchmarkAblationPackingStrategy(b *testing.B) {
	cat := catalog.Standard()
	for i := 0; i < b.N; i++ {
		ffd, err := binpack.PlanScoreQueries(cat, awsapi.MaxReturnedScores, false)
		if err != nil {
			b.Fatal(err)
		}
		exact, err := binpack.PlanScoreQueries(cat, awsapi.MaxReturnedScores, true)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(ffd.NaiveQueries), "queries-naive")
		b.ReportMetric(float64(len(ffd.Queries)), "queries-ffd")
		b.ReportMetric(float64(len(exact.Queries)), "queries-bnb")
		b.ReportMetric(float64(ffd.AccountsNeeded(awsapi.MaxUniqueQueriesPer24h)), "accounts-ffd")
		if i == b.N-1 {
			b.Logf("naive %d -> FFD %d -> B&B %d queries (accounts: %d -> %d)",
				ffd.NaiveQueries, len(ffd.Queries), len(exact.Queries),
				(ffd.NaiveQueries+49)/50, ffd.AccountsNeeded(50))
		}
	}
}

func BenchmarkAblationDedupStorage(b *testing.B) {
	run := func(storeAll bool) int {
		cat := catalog.Compact(2)
		clk := simclock.NewAtEpoch()
		cloud := cloudsim.New(cat, clk, 42, cloudsim.DefaultParams())
		db, err := tsdb.Open("")
		if err != nil {
			b.Fatal(err)
		}
		cfg := collector.DefaultConfig()
		cfg.StoreAllSamples = storeAll
		col, err := collector.New(cloud, db, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := col.Run(3 * 24 * time.Hour); err != nil {
			b.Fatal(err)
		}
		return db.PointCount()
	}
	for i := 0; i < b.N; i++ {
		dedup := run(false)
		raw := run(true)
		ratio := float64(raw) / float64(dedup)
		b.ReportMetric(ratio, "storage-blowup")
		if i == b.N-1 {
			b.Logf("3 days at 10-minute cadence: %d points deduplicated vs %d raw (%.1fx)",
				dedup, raw, ratio)
		}
	}
}

func BenchmarkAblationFreshBoost(b *testing.B) {
	// Removing the fresh-instance hazard boost pushes the time-to-first-
	// interruption medians (Figure 11b) out by hours and erases the early
	// clustering the paper observes.
	for i := 0; i < b.N; i++ {
		base := repro.DefaultExperiment54Options()
		base.Seed += uint64(i)
		base.SampleFrac = 0.25
		withBoost, err := repro.Experiment54(base)
		if err != nil {
			b.Fatal(err)
		}
		p := cloudsim.DefaultParams()
		p.FreshBoost = 0
		noBoost := base
		noBoost.Params = &p
		without, err := repro.Experiment54(noBoost)
		if err != nil {
			b.Fatal(err)
		}
		medHL := func(r repro.Experiment54Result) float64 {
			return analysis.Median(r.Result.ByCategory[experiment.CatHL].TimeToInterruptSec)
		}
		b.ReportMetric(medHL(withBoost), "hl-median-s-with")
		b.ReportMetric(medHL(without), "hl-median-s-without")
		if i == b.N-1 {
			b.Logf("H-L median time-to-interrupt: %.0fs with fresh boost vs %.0fs without (paper: 6872s)",
				medHL(withBoost), medHL(without))
		}
	}
}

func BenchmarkAblationHistoryFeatures(b *testing.B) {
	// The Table 4 forest with history features vs the same forest
	// restricted to the current-value features (last SPS, last IF,
	// savings). History is what the archive adds; the gap is its value.
	currentOnly := []int{5, 11, 12} // sps_last, if_last, savings_last
	for i := 0; i < b.N; i++ {
		col, err := repro.Collect(repro.CollectOptions{
			Seed: 44 + uint64(i), Days: 21, SampleFrac: 0.35, Interval: time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		cfg := experiment.DefaultConfig()
		cfg.Archive = col.DB
		cfg.Seed = 44 + uint64(i)
		res, err := experiment.Run(col.Cloud, cfg)
		if err != nil {
			b.Fatal(err)
		}
		var full [][]float64
		var y []int
		for _, c := range res.Cases {
			if c.Features != nil {
				full = append(full, c.Features)
				y = append(y, int(c.Outcome))
			}
		}
		reduced := make([][]float64, len(full))
		for r, row := range full {
			sub := make([]float64, len(currentOnly))
			for j, idx := range currentOnly {
				sub[j] = row[idx]
			}
			reduced[r] = sub
		}
		trainIdx, testIdx := mlearn.TrainTestSplit(len(full), 0.3, 7)
		evalSet := func(X [][]float64) float64 {
			trX, trY := mlearn.Subset(X, y, trainIdx)
			teX, teY := mlearn.Subset(X, y, testIdx)
			f, err := mlearn.TrainForest(trX, trY, experiment.NumOutcomes, mlearn.ForestConfig{NumTrees: 100, Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			return mlearn.Accuracy(teY, f.PredictAll(teX))
		}
		accFull := evalSet(full)
		accCur := evalSet(reduced)
		b.ReportMetric(accFull, "acc-history")
		b.ReportMetric(accCur, "acc-current-only")
		if i == b.N-1 {
			b.Logf("forest accuracy: %.2f with month-long history vs %.2f with current values only",
				accFull, accCur)
		}
	}
}
