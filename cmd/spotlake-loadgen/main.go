// Command spotlake-loadgen drives mixed traffic against a running
// spotlake-server and reports latency under load — the p50/p99 series
// the BENCH_pr*.json artifacts carry alongside ns/op microbenchmarks.
//
// Three traffic classes model the workloads the serving layer is
// hardened for:
//
//   - hot:    the same bounded query over and over — the result-cache
//     hit path (availability dashboards polling one endpoint).
//   - cold:   a bounded query whose window differs every request — a
//     guaranteed cache miss that fans out over the store (broad
//     historical scans, "Ding-Dong Ditch"-style probing).
//   - cursor: keyset-cursor walks following X-Next-Cursor page by page
//     (bulk exports and analysis clients).
//
// Workers are pinned to classes in proportion to -mix, each issuing
// requests back to back for -duration. Per-class and overall results
// are printed as `loadgen:` rows that cmd/benchjson parses into the
// bench artifact's `latency` section:
//
//	loadgen: class=hot concurrency=5 requests=1234 ok=1234 throttled=0 shed=0 errors=0 rps=123.4 p50ms=0.52 p99ms=2.31
//
// After the run the generator scrapes the server's GET /api/v1/metrics
// (Prometheus text exposition) and folds every non-bucket sample into a
// `metric:` row — the server-side view of the same run the client-side
// `loadgen:` rows measured:
//
//	metric: name=spotlake_admission_admitted_total value=1234
//
// 429 (throttled) and 503 (shed) responses are counted separately and
// excluded from the latency percentiles — they measure the admission
// layer working, not the query path — and workers honor Retry-After
// with a capped pause so a throttled run degrades instead of spinning.
//
// Usage:
//
//	spotlake-loadgen [-url http://localhost:8080] [-concurrency 16]
//	                 [-duration 10s] [-mix cursor=1,hot=1,cold=1]
//	                 [-limit 500] [-dataset sps] [-timeout 10s]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

type result struct {
	latency   time.Duration
	status    int // 0 = transport error
	err       bool
	throttled bool
	shed      bool
}

type classStats struct {
	requests  int
	ok        int
	throttled int
	shed      int
	errors    int
	latencies []time.Duration
}

func (c *classStats) add(r result) {
	c.requests++
	switch {
	case r.err:
		c.errors++
	case r.throttled:
		c.throttled++
	case r.shed:
		c.shed++
	case r.status >= 200 && r.status < 300:
		c.ok++
		c.latencies = append(c.latencies, r.latency)
	default:
		c.errors++
	}
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(p*float64(len(sorted)-1))]
}

func (c *classStats) report(class string, workers int, elapsed time.Duration) string {
	sort.Slice(c.latencies, func(i, j int) bool { return c.latencies[i] < c.latencies[j] })
	ms := func(d time.Duration) string {
		if len(c.latencies) == 0 {
			return "NaN"
		}
		return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 3, 64)
	}
	rps := float64(c.requests) / elapsed.Seconds()
	return fmt.Sprintf("loadgen: class=%s concurrency=%d requests=%d ok=%d throttled=%d shed=%d errors=%d rps=%.1f p50ms=%s p99ms=%s",
		class, workers, c.requests, c.ok, c.throttled, c.shed, c.errors, rps,
		ms(percentile(c.latencies, 0.50)), ms(percentile(c.latencies, 0.99)))
}

// parseMix reads "cursor=1,hot=2,cold=1" into class weights.
func parseMix(s string) (map[string]int, error) {
	weights := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("malformed mix element %q (want class=weight)", part)
		}
		switch name {
		case "cursor", "hot", "cold":
		default:
			return nil, fmt.Errorf("unknown traffic class %q (want cursor, hot, or cold)", name)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix weight for %q must be a non-negative integer, got %q", name, val)
		}
		weights[name] = w
	}
	return weights, nil
}

// assignWorkers splits n workers across the weighted classes using
// largest-remainder rounding; every class with positive weight gets at
// least one worker when n allows.
func assignWorkers(n int, weights map[string]int) map[string]int {
	classes := make([]string, 0, len(weights))
	totalW := 0
	for c, w := range weights {
		if w > 0 {
			classes = append(classes, c)
			totalW += w
		}
	}
	sort.Strings(classes)
	out := map[string]int{}
	if totalW == 0 || n <= 0 {
		return out
	}
	type rem struct {
		class string
		frac  float64
	}
	rems := make([]rem, 0, len(classes))
	used := 0
	for _, c := range classes {
		exact := float64(n) * float64(weights[c]) / float64(totalW)
		base := int(math.Floor(exact))
		out[c] = base
		used += base
		rems = append(rems, rem{c, exact - float64(base)})
	}
	sort.Slice(rems, func(i, j int) bool {
		if rems[i].frac != rems[j].frac {
			return rems[i].frac > rems[j].frac
		}
		return rems[i].class < rems[j].class
	})
	for i := 0; used < n; i = (i + 1) % len(rems) {
		out[rems[i].class]++
		used++
	}
	return out
}

// scrapeMetrics pulls the server's Prometheus exposition once the run
// ends and prints every non-bucket sample as a `metric:` row (the same
// name=value format spotlake-collector logs, so cmd/benchjson folds
// either). A scrape that fails to fetch or parse is a warning, not a
// run failure — CI enforces exposition validity through cmd/metriclint.
func scrapeMetrics(client *http.Client, baseURL string) {
	resp, err := client.Get(baseURL + "/api/v1/metrics")
	if err != nil {
		log.Printf("warning: scraping /api/v1/metrics: %v", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Printf("warning: scraping /api/v1/metrics: status %d", resp.StatusCode)
		return
	}
	samples, err := obs.ParseExposition(resp.Body)
	if err != nil {
		log.Printf("warning: /api/v1/metrics exposition did not parse: %v", err)
		return
	}
	for _, s := range samples {
		if s.Le != "" {
			continue
		}
		fmt.Printf("metric: name=%s value=%g\n", s.Name, s.Value)
	}
}

// retryPause honors a 429/503 Retry-After header, capped so a loadgen
// run measures the server under sustained pressure rather than sleeping
// through its own duration.
func retryPause(resp *http.Response, cap time.Duration) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return min(time.Duration(secs)*time.Second, cap)
		}
	}
	return min(50*time.Millisecond, cap)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("spotlake-loadgen: ")
	var (
		baseURL     = flag.String("url", "http://localhost:8080", "server base URL")
		concurrency = flag.Int("concurrency", 16, "total concurrent workers (the offered load)")
		duration    = flag.Duration("duration", 10*time.Second, "how long to drive traffic")
		mix         = flag.String("mix", "cursor=1,hot=1,cold=1", "traffic mix as class=weight, classes: cursor, hot, cold")
		limit       = flag.Int("limit", 500, "page size (limit=) for every request")
		dataset     = flag.String("dataset", "", "dataset to query (default: first of /api/v1/datasets)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout")
	)
	flag.Parse()

	weights, err := parseMix(*mix)
	if err != nil {
		log.Fatalf("-mix: %v", err)
	}
	client := &http.Client{Timeout: *timeout}

	ds := *dataset
	if ds == "" {
		resp, err := client.Get(*baseURL + "/api/v1/datasets")
		if err != nil {
			log.Fatalf("probing %s: %v", *baseURL, err)
		}
		var names []string
		err = json.NewDecoder(resp.Body).Decode(&names)
		resp.Body.Close()
		if err != nil || len(names) == 0 {
			log.Fatalf("no datasets at %s (err=%v)", *baseURL, err)
		}
		ds = names[0]
	}

	assignment := assignWorkers(*concurrency, weights)
	total := 0
	for _, n := range assignment {
		total += n
	}
	if total == 0 {
		log.Fatalf("mix %q and concurrency %d yield no workers", *mix, *concurrency)
	}
	log.Printf("driving %s for %v: dataset=%s limit=%d workers=%v", *baseURL, *duration, ds, *limit, assignment)

	// Cold queries vary `from` so every request is a distinct cache key;
	// the epoch-anchored minute offsets stay inside any bootstrap window.
	coldFrom := func(i int) string {
		return time.Date(2022, 1, 1, 0, i%1440, 0, 0, time.UTC).Format(time.RFC3339)
	}

	deadline := time.Now().Add(*duration)
	results := make(chan struct {
		class string
		r     result
	}, 4096)

	do := func(url string) (result, *http.Response) {
		start := time.Now()
		resp, err := client.Get(url)
		r := result{latency: time.Since(start)}
		if err != nil {
			r.err = true
			return r, nil
		}
		// Drain so the connection is reusable and streamed bodies are
		// actually paid for.
		_, copyErr := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		r.latency = time.Since(start)
		r.status = resp.StatusCode
		r.throttled = resp.StatusCode == http.StatusTooManyRequests
		r.shed = resp.StatusCode == http.StatusServiceUnavailable
		if copyErr != nil {
			r.err = true
		}
		return r, resp
	}

	var wg sync.WaitGroup
	workerID := 0
	for class, n := range assignment {
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func(class string, id int) {
				defer wg.Done()
				iter := 0
				cursor := "" // cursor class: current walk position
				for time.Now().Before(deadline) {
					var url string
					switch class {
					case "hot":
						url = fmt.Sprintf("%s/api/v1/query?dataset=%s&limit=%d", *baseURL, ds, *limit)
					case "cold":
						url = fmt.Sprintf("%s/api/v1/query?dataset=%s&limit=%d&from=%s",
							*baseURL, ds, *limit, coldFrom(id*7919+iter))
					case "cursor":
						url = fmt.Sprintf("%s/api/v1/query?dataset=%s&limit=%d&cursor=%s", *baseURL, ds, *limit, cursor)
					}
					r, resp := do(url)
					results <- struct {
						class string
						r     result
					}{class, r}
					iter++
					switch {
					case r.err:
						time.Sleep(10 * time.Millisecond)
					case r.throttled || r.shed:
						time.Sleep(retryPause(resp, time.Until(deadline)))
					case class == "cursor":
						// Follow the walk; restart from the head when it ends.
						cursor = ""
						if resp != nil {
							cursor = resp.Header.Get("X-Next-Cursor")
						}
					}
				}
			}(class, workerID)
			workerID++
		}
	}

	done := make(chan struct{})
	perClass := map[string]*classStats{}
	all := &classStats{}
	go func() {
		defer close(done)
		for res := range results {
			cs := perClass[res.class]
			if cs == nil {
				cs = &classStats{}
				perClass[res.class] = cs
			}
			cs.add(res.r)
			all.add(res.r)
		}
	}()
	wg.Wait()
	close(results)
	<-done

	classes := make([]string, 0, len(perClass))
	for c := range perClass {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		fmt.Println(perClass[c].report(c, assignment[c], *duration))
	}
	fmt.Println(all.report("all", total, *duration))
	scrapeMetrics(client, *baseURL)
	if all.ok == 0 {
		log.Printf("warning: no successful requests (server down, empty archive, or everything throttled)")
		os.Exit(1)
	}
}
