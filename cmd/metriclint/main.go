// Command metriclint validates a Prometheus text exposition scrape —
// the CI gate that keeps GET /api/v1/metrics honest. It reads the
// exposition from stdin (or a file argument), runs the same strict
// parser the loadgen scrape uses (internal/obs.ParseExposition: names,
// values, TYPE comments, cumulative ascending histogram buckets ending
// at +Inf with a matching _count), and exits non-zero with the parse
// error if anything is malformed.
//
// Beyond well-formedness it enforces the repo's naming contract: every
// sample must carry the spotlake_ prefix (one namespace across tsdb,
// archive, and replication), and -require can demand specific series so
// a refactor that silently drops a metric fails the bench job instead
// of shipping a blind spot.
//
// Usage:
//
//	curl -fsS localhost:8080/api/v1/metrics | metriclint
//	metriclint -require spotlake_admission_admitted_total scrape.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/obs"
)

func main() {
	var (
		prefix  = flag.String("prefix", "spotlake_", "required metric-name prefix (empty disables the check)")
		require = flag.String("require", "", "comma-separated metric names that must be present")
	)
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "metriclint:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	samples, err := obs.ParseExposition(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metriclint:", err)
		os.Exit(1)
	}
	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "metriclint: exposition contains no samples")
		os.Exit(1)
	}

	bad := 0
	seen := make(map[string]bool, len(samples))
	for _, s := range samples {
		seen[s.Name] = true
		if *prefix != "" && !strings.HasPrefix(s.Name, *prefix) {
			fmt.Fprintf(os.Stderr, "metriclint: %s: missing required prefix %q\n", s.Name, *prefix)
			bad++
		}
	}
	if *require != "" {
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			// A histogram family is present via its _count series.
			if !seen[name] && !seen[name+"_count"] {
				fmt.Fprintf(os.Stderr, "metriclint: required metric %s not found\n", name)
				bad++
			}
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
	fmt.Printf("metriclint: ok (%d samples, %d series)\n", len(samples), len(seen))
}
