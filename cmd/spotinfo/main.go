// Command spotinfo is the SpotInfo-style advisor CLI (the open-source tool
// [29] the paper uses to scrape the spot instance advisor): it prints the
// advisor dataset — interruption band and savings per (type, region) — as
// a sortable, filterable table, giving programmatic access to a dataset the
// vendor only publishes on a website.
//
// Usage:
//
//	spotinfo [-type SUBSTRING] [-region REGION] [-sort interruption|savings|type]
//	         [-max N] [-days D] [-seed N] [-frac F]
//
// The tool runs against a simulated cloud advanced D days from the epoch.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"repro/internal/awsapi"
	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/simclock"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spotinfo: ")

	var (
		typeFilter = flag.String("type", "", "instance type substring filter")
		region     = flag.String("region", "", "region filter")
		sortBy     = flag.String("sort", "interruption", "sort key: interruption | savings | type")
		maxRows    = flag.Int("max", 40, "maximum rows to print (0 = all)")
		days       = flag.Int("days", 7, "simulated days to advance before scraping")
		seed       = flag.Uint64("seed", 22, "simulation seed")
		frac       = flag.Float64("frac", 0.25, "catalog fraction (1.0 = all 547 types)")
	)
	flag.Parse()

	var cat *catalog.Catalog
	if *frac >= 1 {
		cat = catalog.Standard()
	} else {
		cat = catalog.Sample(*frac)
	}
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, *seed, cloudsim.DefaultParams())
	clk.RunFor(time.Duration(*days) * 24 * time.Hour)

	doc := awsapi.FetchAdvisorDocument(cloud)
	rows := doc.Entries
	if *typeFilter != "" {
		filtered := rows[:0]
		for _, e := range rows {
			if strings.Contains(e.Type, *typeFilter) {
				filtered = append(filtered, e)
			}
		}
		rows = filtered
	}
	if *region != "" {
		filtered := rows[:0]
		for _, e := range rows {
			if e.Region == *region {
				filtered = append(filtered, e)
			}
		}
		rows = filtered
	}

	switch *sortBy {
	case "interruption":
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].Bucket < rows[j].Bucket })
	case "savings":
		sort.SliceStable(rows, func(i, j int) bool { return rows[i].SavingsPct > rows[j].SavingsPct })
	case "type":
		sort.SliceStable(rows, func(i, j int) bool {
			if rows[i].Type != rows[j].Type {
				return rows[i].Type < rows[j].Type
			}
			return rows[i].Region < rows[j].Region
		})
	default:
		log.Fatalf("unknown sort key %q (want interruption | savings | type)", *sortBy)
	}

	fmt.Printf("%-20s %-16s %-14s %s\n", "INSTANCE TYPE", "REGION", "INTERRUPTION", "SAVINGS")
	printed := 0
	for _, e := range rows {
		if *maxRows > 0 && printed >= *maxRows {
			fmt.Printf("... (%d more rows, raise -max)\n", len(rows)-printed)
			break
		}
		fmt.Printf("%-20s %-16s %-14s %d%%\n", e.Type, e.Region, e.Bucket, e.SavingsPct)
		printed++
	}
	if len(rows) == 0 {
		log.Print("no advisor entries match the filters")
	}
}
