// Command spotlake-repro regenerates every table and figure of the paper's
// evaluation and prints measured-vs-paper values.
//
// Usage:
//
//	spotlake-repro [-only table2,fig7,...] [-seed N] [-days N] [-frac F] [-full]
//
// The default scale runs every experiment in a few minutes. -full uses the
// paper's full 181-day window (slower).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/repro"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spotlake-repro: ")

	var (
		only   = flag.String("only", "", "comma-separated experiment ids (table1,table2,table3,table4,fig1,fig3,fig4,fig5,fig6,fig7,fig8,fig9,fig10,fig11); empty = all")
		seed   = flag.Uint64("seed", 22, "simulation seed")
		days   = flag.Int("days", 60, "collection days for archive-driven figures")
		frac   = flag.Float64("frac", 0.12, "catalog fraction for archive-driven figures (1.0 = all 547 types)")
		full   = flag.Bool("full", false, "use the paper's full 181-day collection window")
		csvDir = flag.String("csv", "", "also export figure/table data as CSV files into this directory")
	)
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	sel := func(id string) bool { return len(want) == 0 || want[id] }

	out := func(s string) {
		fmt.Println(s)
		fmt.Println()
	}

	if sel("table1") {
		res, err := repro.Table1(*seed)
		if err != nil {
			log.Fatalf("table1: %v", err)
		}
		out(res.String())
	}
	if sel("fig1") {
		res, err := repro.Fig1()
		if err != nil {
			log.Fatalf("fig1: %v", err)
		}
		out(res.String())
	}

	needArchive := sel("table2") || sel("fig3") || sel("fig4") || sel("fig5") ||
		sel("fig8") || sel("fig9") || sel("fig10")
	if needArchive {
		opt := repro.CollectOptions{Seed: *seed, Days: *days, SampleFrac: *frac, Interval: 30 * time.Minute}
		if *full {
			opt.Days = 181
		}
		log.Printf("collecting archive: %d days, %.0f%% of catalog, %v cadence...",
			opt.Days, opt.SampleFrac*100, opt.Interval)
		start := time.Now()
		col, err := repro.Collect(opt)
		if err != nil {
			log.Fatalf("collect: %v", err)
		}
		log.Printf("archive ready in %v: %d series, %d points, %d queries issued",
			time.Since(start).Round(time.Millisecond),
			col.DB.SeriesCount(), col.DB.PointCount(), col.Stats.QueriesIssued)

		if sel("table2") {
			out(repro.Table2(col).String())
		}
		if sel("fig3") {
			out(repro.Fig3(col).String())
		}
		if sel("fig4") {
			out(repro.Fig4(col).String())
		}
		if sel("fig5") {
			out(repro.Fig5(col).String())
		}
		if sel("fig8") {
			out(repro.Fig8(col).String())
		}
		if sel("fig9") {
			out(repro.Fig9(col).String())
		}
		if sel("fig10") {
			out(repro.Fig10(col).String())
		}
		if *csvDir != "" {
			if err := repro.ExportCSV(col, *csvDir); err != nil {
				log.Fatalf("csv export: %v", err)
			}
			log.Printf("archive figure CSVs written to %s", *csvDir)
		}
	}

	if sel("fig6") {
		res, err := repro.Fig6(*seed, 30)
		if err != nil {
			log.Fatalf("fig6: %v", err)
		}
		out(res.String())
		if *csvDir != "" {
			if err := repro.ExportFig6CSV(res, *csvDir); err != nil {
				log.Fatalf("csv export: %v", err)
			}
		}
	}
	if sel("fig7") {
		res, err := repro.Fig7(*seed, 40)
		if err != nil {
			log.Fatalf("fig7: %v", err)
		}
		out(res.String())
		if *csvDir != "" {
			if err := repro.ExportFig7CSV(res, *csvDir); err != nil {
				log.Fatalf("csv export: %v", err)
			}
		}
	}
	if sel("table3") || sel("fig11") {
		opt := repro.DefaultExperiment54Options()
		opt.Seed = *seed
		log.Printf("running Section 5.4 experiment (24h horizon, stratified sampling)...")
		res, err := repro.Experiment54(opt)
		if err != nil {
			log.Fatalf("experiment: %v", err)
		}
		if sel("table3") {
			out(res.Table3String())
		}
		if sel("fig11") {
			out(res.Fig11aString())
			out(res.Fig11bString())
		}
		if *csvDir != "" {
			if err := repro.ExportExperimentCSV(res, *csvDir); err != nil {
				log.Fatalf("csv export: %v", err)
			}
		}
	}
	if sel("table4") {
		opt := repro.DefaultTable4Options()
		opt.Seed = *seed
		log.Printf("running Table 4 prediction study (collect %d days + experiment + forest)...", opt.CollectDays)
		res, err := repro.Table4(opt)
		if err != nil {
			log.Fatalf("table4: %v", err)
		}
		out(res.String())
		if *csvDir != "" {
			if err := repro.ExportTable4CSV(res, *csvDir); err != nil {
				log.Fatalf("csv export: %v", err)
			}
		}
	}

	if len(want) > 0 {
		known := []string{"table1", "table2", "table3", "table4", "fig1", "fig3",
			"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"}
		valid := map[string]bool{}
		for _, k := range known {
			valid[k] = true
		}
		for id := range want {
			if !valid[id] {
				fmt.Fprintf(os.Stderr, "unknown experiment id %q (known: %s)\n", id, strings.Join(known, ","))
				os.Exit(2)
			}
		}
	}
}
