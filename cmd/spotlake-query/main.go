// Command spotlake-query is a CLI client for the SpotLake archive API (the
// programmatic access the paper argues spot datasets need).
//
// Usage:
//
//	spotlake-query -server http://localhost:8080 meta
//	spotlake-query -server ... latest  -dataset if -region us-east-1
//	spotlake-query -server ... history -dataset sps -type m5.xlarge -region us-east-1 [-az us-east-1a] [-from RFC3339] [-to RFC3339]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"os"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spotlake-query: ")

	var (
		server  = flag.String("server", "http://localhost:8080", "archive server base URL")
		dataset = flag.String("dataset", "", "dataset: sps | if | price | savings")
		typ     = flag.String("type", "", "instance type filter")
		region  = flag.String("region", "", "region filter")
		az      = flag.String("az", "", "availability zone filter")
		from    = flag.String("from", "", "window start (RFC3339)")
		to      = flag.String("to", "", "window end (RFC3339)")
	)
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "meta"
	}

	switch cmd {
	case "meta":
		var meta map[string]any
		fetch(*server+"/api/v1/meta", &meta)
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(meta); err != nil {
			log.Fatal(err)
		}

	case "latest":
		q := params(*dataset, *typ, *region, *az, "", "")
		var entries []struct {
			Key   map[string]string `json:"key"`
			At    time.Time         `json:"at"`
			Value float64           `json:"value"`
		}
		fetch(*server+"/api/v1/latest?"+q, &entries)
		for _, e := range entries {
			fmt.Printf("%-8s %-16s %-14s %-14s %s %.4f\n",
				e.Key["Dataset"], e.Key["Type"], e.Key["Region"], e.Key["AZ"],
				e.At.Format(time.RFC3339), e.Value)
		}
		if len(entries) == 0 {
			log.Print("no matching series")
		}

	case "history":
		q := params(*dataset, *typ, *region, *az, *from, *to)
		var series []struct {
			Key    map[string]string `json:"key"`
			Points []struct {
				At    time.Time `json:"At"`
				Value float64   `json:"Value"`
			} `json:"points"`
		}
		fetch(*server+"/api/v1/query?"+q, &series)
		for _, s := range series {
			fmt.Printf("# %s %s %s %s\n", s.Key["Dataset"], s.Key["Type"], s.Key["Region"], s.Key["AZ"])
			for _, p := range s.Points {
				fmt.Printf("%s %.4f\n", p.At.Format(time.RFC3339), p.Value)
			}
		}
		if len(series) == 0 {
			log.Print("no matching series")
		}

	default:
		log.Fatalf("unknown command %q (want meta | latest | history)", cmd)
	}
}

func params(dataset, typ, region, az, from, to string) string {
	v := url.Values{}
	set := func(k, s string) {
		if s != "" {
			v.Set(k, s)
		}
	}
	set("dataset", dataset)
	set("type", typ)
	set("region", region)
	set("az", az)
	set("from", from)
	set("to", to)
	return v.Encode()
}

func fetch(u string, into any) {
	resp, err := http.Get(u)
	if err != nil {
		log.Fatalf("GET %s: %v", u, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("reading response: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("server returned %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, into); err != nil {
		log.Fatalf("decoding response: %v", err)
	}
}
