// Command spotlake-server runs the full SpotLake service against a
// simulated cloud: it bootstraps an archive by fast-forwarding the
// simulation, then serves the web API while collection continues in the
// background (simulated time advances one collection tick per wall-clock
// interval, like a live deployment).
//
// The -data directory uses the rotated segment layout (MANIFEST, per-shard
// wal-<shard>-<seq>.log segment chains, checkpoint snapshot); directories
// written by older builds — a single points.wal, or the one-segment-per-
// shard v1 layout — are migrated automatically on open. Shard segments
// rotate past -rotate-bytes. With -data set the store maintains itself:
// its internal daemon (polling every -maintenance-interval) checkpoints
// whenever the WAL grows -checkpoint-bytes past the last checkpoint or a
// shard accumulates -max-sealed-segments sealed segments — covering the
// bootstrap writer and snapshot restores, not just collection ticks —
// and the server additionally checkpoints after bootstrap and every
// -checkpoint-interval of simulated time. Restarts bulk-load the
// snapshot and replay only bounded per-shard chain tails.
//
// The HTTP front is hardened for public traffic: the listener runs with
// read/write/idle timeouts (a slowloris client cannot hold a goroutine
// forever), and the admission layer throttles per-client request rates
// (429 + Retry-After), bounds concurrent in-flight requests, and sheds
// the excess with 503 once a bounded queue wait expires. SIGINT/SIGTERM
// drain in-flight requests before the store closes.
//
// Observability is default-on, no flags: GET /api/v1/metrics serves the
// process's metrics registry in Prometheus text exposition format (the
// same counters /api/v1/meta reports as JSON), GET /healthz answers
// liveness, and GET /readyz answers readiness (on a follower: the
// applied position is within -max-staleness). All four observability
// endpoints bypass admission control and the staleness gate.
//
// With -follow=<primary-url> the server runs as a read replica instead:
// no collector, no bootstrap, no writes. A replication puller lists the
// primary's committed checkpoint artifacts every -poll-interval, ships
// the delta into -data, commits the primary's MANIFEST by atomic rename
// (a crash mid-pull is just a stale replica), and reopens the store
// read-only. All read endpoints are served locally; past -max-staleness
// without a confirmed sync they answer 503 stale_replica (meta stays
// reachable and reports role, applied epoch, and seconds behind).
//
// Usage:
//
//	spotlake-server [-addr :8080] [-bootstrap-days 14] [-frac 0.12]
//	                [-data DIR] [-tick 2s] [-seed 22]
//	                [-checkpoint-interval 24h] [-checkpoint-bytes 67108864]
//	                [-rotate-bytes 8388608] [-max-sealed-segments 64]
//	                [-maintenance-interval 1s] [-snapshot FILE]
//	                [-max-in-flight 256] [-queue-wait 100ms]
//	                [-rate-limit 50] [-rate-burst 100] [-drain-timeout 15s]
//	spotlake-server -follow http://primary:8080 -data DIR [-addr :8081]
//	                [-poll-interval 2s] [-max-staleness 30s]
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/archive"
	"repro/internal/azuresim"
	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/collector"
	"repro/internal/gcpsim"
	"repro/internal/multicloud"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("spotlake-server: ")

	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		bootstrap  = flag.Int("bootstrap-days", 14, "simulated days to collect before serving")
		frac       = flag.Float64("frac", 0.12, "catalog fraction (1.0 = all 547 types)")
		dataDir    = flag.String("data", "", "archive data directory for persistence (empty = memory only; legacy single-WAL dirs migrate automatically)")
		tick       = flag.Duration("tick", 2*time.Second, "wall-clock interval per live collection tick")
		seed       = flag.Uint64("seed", 22, "simulation seed")
		multiCloud = flag.Bool("multicloud", false, "also collect Azure and GCP spot datasets (Section 7)")
		cpInterval = flag.Duration("checkpoint-interval", 24*time.Hour, "simulated time between archive checkpoints with -data (0 disables)")
		cpBytes    = flag.Int64("checkpoint-bytes", 64<<20, "checkpoint as soon as the WAL grows this many bytes past the last checkpoint (0 disables the size trigger)")
		rotBytes   = flag.Int64("rotate-bytes", tsdb.DefaultRotateBytes, "seal and rotate a shard's WAL segment past this many bytes (negative disables rotation)")
		maxSealed  = flag.Int("max-sealed-segments", 64, "checkpoint before any shard accumulates this many sealed WAL segments (0 disables the cap)")
		maintIv    = flag.Duration("maintenance-interval", tsdb.DefaultMaintenanceInterval, "store maintenance daemon poll period (negative disables the daemon)")
		hotTail    = flag.Int("hot-tail", 0, "per-series points kept hot (uncompressed) ahead of the sealed block tier; 0 = default, negative disables sealing")
		blockPts   = flag.Int("block-points", 0, "points per compressed cold block (0 = default)")
		blockCache = flag.Int64("block-cache-bytes", 0, "decoded cold-block LRU cache budget in bytes (0 = default, negative disables)")
		sealAfter  = flag.Int64("seal-after-hot-points", 0, "maintenance seals history once this many hot points accumulate past the last seal (0 disables the trigger)")
		retainRaw  = flag.String("retain-raw", "", "per-dataset raw retention horizons, comma-separated <dataset>=<horizon> (e.g. price=90d,sps=720h); raw points past the horizon are dropped once 1h/1d rollups cover them (requires -data and sealing)")
		snapshot   = flag.String("snapshot", "", "standalone snapshot file: loaded at startup when present (skipping that much bootstrap), saved after bootstrap (deprecated with -data: the data dir checkpoints itself)")
		maxInFl    = flag.Int("max-in-flight", 256, "cap on concurrently executing requests; the excess queues briefly then is shed with 503 (0 = unlimited)")
		queueWait  = flag.Duration("queue-wait", 100*time.Millisecond, "how long an over-cap request may wait for an in-flight slot before being shed")
		rateLimit  = flag.Float64("rate-limit", 50, "per-client sustained requests/sec before 429 + Retry-After (0 disables throttling)")
		rateBurst  = flag.Float64("rate-burst", 100, "per-client burst allowance above the sustained rate")
		drainTO    = flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests to drain")
		follow     = flag.String("follow", "", "primary base URL: run as a read replica pulling checkpoint artifacts from it (requires -data; disables collection and writes)")
		pollIv     = flag.Duration("poll-interval", 2*time.Second, "with -follow, how often the puller lists the primary for new checkpoint artifacts")
		maxStale   = flag.Duration("max-staleness", 30*time.Second, "with -follow, reads answer 503 stale_replica once this long passes without a confirmed sync (0 = serve however stale)")
	)
	flag.Parse()

	var cat *catalog.Catalog
	if *frac >= 1 {
		cat = catalog.Standard()
	} else {
		cat = catalog.Sample(*frac)
	}

	if *follow != "" {
		runFollower(followerConfig{
			addr: *addr, primaryURL: *follow, dataDir: *dataDir,
			pollInterval: *pollIv, maxStaleness: *maxStale,
			blockCache: *blockCache, multiCloud: *multiCloud,
			maxInFlight: *maxInFl, queueWait: *queueWait,
			rateLimit: *rateLimit, rateBurst: *rateBurst,
			drainTimeout: *drainTO,
		}, cat)
		return
	}

	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, *seed, cloudsim.DefaultParams())
	var retain map[string]time.Duration
	if *retainRaw != "" {
		var err error
		if retain, err = tsdb.ParseRetainRaw(*retainRaw); err != nil {
			log.Fatalf("parsing -retain-raw: %v", err)
		}
	}
	db, err := tsdb.OpenWithOptions(*dataDir, tsdb.Options{
		RotateBytes:          *rotBytes,
		CheckpointAfterBytes: *cpBytes,
		MaxSealedSegments:    *maxSealed,
		MaintenanceInterval:  *maintIv,
		HotTailPoints:        *hotTail,
		BlockPoints:          *blockPts,
		BlockCacheBytes:      *blockCache,
		SealAfterHotPoints:   *sealAfter,
		RetainRaw:            retain,
	})
	if err != nil {
		log.Fatalf("opening archive store: %v", err)
	}
	defer db.Close()

	// A snapshot restores a previous run's archive in one pass. When the
	// WAL (-data) already replayed the same data on Open, the snapshot is
	// redundant — loading it would be rejected as overlapping appends.
	if *snapshot != "" {
		if db.PointCount() > 0 {
			log.Printf("store already holds %d points (WAL replay); skipping snapshot load", db.PointCount())
		} else if n, err := db.LoadSnapshotFile(*snapshot); err == nil {
			log.Printf("loaded snapshot %s: %d series, %d points", *snapshot, n, db.PointCount())
		} else if !errors.Is(err, os.ErrNotExist) {
			log.Fatalf("loading snapshot: %v", err)
		}
	}
	cfg := collector.DefaultConfig()
	// Restored data (snapshot or WAL) sits in simulated time after the
	// clock's epoch start: fast-forward so collection continues where the
	// archive left off instead of appending out of order. Land one tick
	// PAST the last recovered timestamp, not on it: collector.Start
	// collects immediately at clk.Now(), and the store accepts same-
	// timestamp appends, so resuming exactly onto MaxTime would write
	// duplicate-timestamp points next to the recovered ones.
	if maxAt, ok := db.MaxTime(); ok && !maxAt.Before(clk.Now()) {
		clk.RunFor(maxAt.Add(cfg.ScoreInterval).Sub(clk.Now()))
	}

	cfg.CheckpointInterval = *cpInterval
	// Deprecation shim: the store's maintenance daemon owns the byte
	// trigger now; the collector's copy stands down when the store
	// self-maintains (it does here) and only matters for stores opened
	// without the option.
	cfg.CheckpointAfterBytes = *cpBytes
	col, err := collector.New(cloud, db, cfg)
	if err != nil {
		log.Fatalf("building collector: %v", err)
	}
	log.Printf("catalog: %d types, %d regions, %d AZs; query plan: %d queries over %d accounts",
		cat.NumTypes(), cat.NumRegions(), cat.NumAZs(), len(col.Plan().Queries), col.Accounts())

	var mc *multicloud.Collector
	if *multiCloud {
		azure := azuresim.New(clk, *seed)
		gcp := gcpsim.New(clk, *seed)
		mc, err = multicloud.New(clk, db, multicloud.DefaultConfig(), nil, azure, gcp)
		if err != nil {
			log.Fatalf("building multi-cloud collector: %v", err)
		}
		log.Printf("multi-cloud: +%d Azure sizes x %d regions, +%d GCP types x %d regions",
			len(azure.Sizes()), len(azure.Regions()), len(gcp.MachineTypes()), len(gcp.Regions()))
	}

	log.Printf("bootstrapping archive: %d simulated days...", *bootstrap)
	start := time.Now()
	if err := col.Start(); err != nil {
		log.Fatalf("starting collector: %v", err)
	}
	if mc != nil {
		if err := mc.Start(); err != nil {
			log.Fatalf("starting multi-cloud collector: %v", err)
		}
	}
	// Restored data counts toward the bootstrap target: only simulate the
	// remainder, so a restart with a full snapshot serves immediately.
	if d := simclock.Epoch.Add(time.Duration(*bootstrap) * 24 * time.Hour).Sub(clk.Now()); d > 0 {
		clk.RunFor(d)
	}
	if err := db.Flush(); err != nil {
		log.Fatalf("flushing archive: %v", err)
	}
	log.Printf("bootstrap done in %v: %d series, %d points",
		time.Since(start).Round(time.Millisecond), db.SeriesCount(), db.PointCount())
	// Checkpoint the bootstrap so a restart bulk-loads it instead of
	// replaying the whole bootstrap's WAL.
	if db.Durable() {
		if err := db.Checkpoint(); err != nil {
			log.Fatalf("checkpoint: %v", err)
		}
		log.Printf("checkpointed archive in %s", *dataDir)
	}
	if *snapshot != "" {
		if err := db.SaveSnapshot(*snapshot); err != nil {
			log.Fatalf("saving snapshot: %v", err)
		}
		log.Printf("snapshot saved to %s", *snapshot)
	}

	// Live mode: one goroutine owns the simulation and advances it one
	// collection interval per wall tick; HTTP handlers only read the
	// (concurrency-safe) store and the immutable catalog.
	go func() {
		for range time.Tick(*tick) {
			clk.RunFor(cfg.ScoreInterval)
			if err := db.Flush(); err != nil {
				log.Printf("flush: %v", err)
			}
		}
	}()

	svc := archive.NewService(db, cat)
	if *multiCloud {
		svc.AllowDatasets(multicloud.AllDatasets...)
	}
	svc.SetAdmission(archive.NewAdmission(archive.AdmissionConfig{
		MaxInFlight: *maxInFl,
		MaxQueue:    *maxInFl,
		QueueWait:   *queueWait,
		RatePerSec:  *rateLimit,
		Burst:       *rateBurst,
	}))

	// A configured server, not bare ListenAndServe: without timeouts one
	// slowloris client per goroutine holds connections (and memory) until
	// the process dies. WriteTimeout bounds the whole response, so it is
	// sized for the largest streamed window, not a socket write.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serving on %s (simulated time advances %v per %v; admission: %d in-flight, %.3g req/s per client; metrics at /api/v1/metrics)",
		*addr, cfg.ScoreInterval, *tick, *maxInFl, *rateLimit)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		// The listener died on its own; nothing to drain. Close the store
		// explicitly — log.Fatalf skips deferred calls.
		if closeErr := db.Close(); closeErr != nil {
			log.Printf("closing store: %v", closeErr)
		}
		log.Fatalf("http: %v", err)
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, let in-flight requests
		// finish (bounded), then the deferred db.Close checkpoints and
		// closes the store with no readers left.
		stop()
		log.Printf("shutdown signal; draining in-flight requests (up to %v)", *drainTO)
		sctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		log.Printf("drained; closing store")
	}
}

// followerConfig carries the replica-mode settings out of flag parsing.
type followerConfig struct {
	addr         string
	primaryURL   string
	dataDir      string
	pollInterval time.Duration
	maxStaleness time.Duration
	blockCache   int64
	multiCloud   bool
	maxInFlight  int
	queueWait    time.Duration
	rateLimit    float64
	rateBurst    float64
	drainTimeout time.Duration
}

// runFollower serves the read API as a replica of cfg.primaryURL: a
// puller ships the primary's checkpoint artifacts into cfg.dataDir and
// swaps freshly reopened read-only stores into the service; nothing in
// this process ever writes a point.
func runFollower(cfg followerConfig, cat *catalog.Catalog) {
	if cfg.dataDir == "" {
		log.Fatalf("-follow requires -data: the replica needs a directory to ship artifacts into")
	}
	storeOpts := tsdb.Options{
		ReadOnly:            true,
		MaintenanceInterval: -1,
		BlockCacheBytes:     cfg.blockCache,
	}
	// Reopen an existing replica so restarts serve immediately; a fresh
	// directory serves empty (gated stale) until the first pull lands.
	var db *tsdb.DB
	var err error
	if tsdb.HasCommittedManifest(cfg.dataDir) {
		if db, err = tsdb.OpenWithOptions(cfg.dataDir, storeOpts); err != nil {
			log.Fatalf("reopening replica: %v", err)
		}
		log.Printf("reopened replica %s: %d series, %d points", cfg.dataDir, db.SeriesCount(), db.PointCount())
	} else if db, err = tsdb.OpenWithOptions("", tsdb.Options{}); err != nil {
		log.Fatalf("opening empty store: %v", err)
	}

	svc := archive.NewService(db, cat)
	if cfg.multiCloud {
		svc.AllowDatasets(multicloud.AllDatasets...)
	}
	svc.SetFollower(cfg.primaryURL, cfg.maxStaleness)
	svc.SetAdmission(archive.NewAdmission(archive.AdmissionConfig{
		MaxInFlight: cfg.maxInFlight,
		MaxQueue:    cfg.maxInFlight,
		QueueWait:   cfg.queueWait,
		RatePerSec:  cfg.rateLimit,
		Burst:       cfg.rateBurst,
	}))
	puller, err := archive.NewPuller(svc, archive.PullerConfig{
		PrimaryURL:   cfg.primaryURL,
		Dir:          cfg.dataDir,
		Interval:     cfg.pollInterval,
		StoreOptions: storeOpts,
		Logf:         log.Printf,
	})
	if err != nil {
		log.Fatalf("building puller: %v", err)
	}
	puller.Start()

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("follower of %s serving on %s (poll %v, max staleness %v; readiness at /readyz, metrics at /api/v1/metrics)",
		cfg.primaryURL, cfg.addr, cfg.pollInterval, cfg.maxStaleness)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		puller.Stop()
		if closeErr := svc.DB().Close(); closeErr != nil {
			log.Printf("closing replica store: %v", closeErr)
		}
		log.Fatalf("http: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("shutdown signal; draining in-flight requests (up to %v)", cfg.drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		// Stop the puller before closing the serving store: a pull
		// completing after Close would swap a fresh store in with nobody
		// left to close it.
		puller.Stop()
		if err := svc.DB().Close(); err != nil {
			log.Printf("closing replica store: %v", err)
		}
	}
}
