// Command benchjson converts `go test -bench` text output — and
// spotlake-loadgen result rows — into the BENCH_pr*.json artifact schema
// the CI bench job records, so per-PR performance numbers accumulate in
// a machine-readable series instead of scrolling away in build logs.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem -cpu=1,4 ./... | benchjson > BENCH.json
//	benchjson bench-output.txt > BENCH.json
//
// Schema (one object):
//
//	{
//	  "schema": "spotlake-bench/v5",
//	  "goos": "linux", "goarch": "amd64", "cpu": "...",   // from the bench header
//	  "benchmarks": [
//	    {"name": "BenchmarkAppendParallel", "cpus": 4,
//	     "fullName": "BenchmarkAppendParallel-4", "iterations": 3181405,
//	     "nsPerOp": 377.5, "bytesPerOp": 48, "allocsPerOp": 2}
//	  ],
//	  "latency": [
//	    {"class": "cursor", "concurrency": 5, "requests": 1234, "ok": 1230,
//	     "throttled": 4, "shed": 0, "errors": 0, "rps": 123.4,
//	     "p50Ms": 0.52, "p99Ms": 2.31}
//	  ],
//	  "memory": [
//	    {"scenario": "cold-sealed", "points": 327680,
//	     "heapBytes": 1310720, "bytesPerPoint": 4.0}
//	  ],
//	  "rollup": [
//	    {"tier": "1h", "windowDays": 90, "points": 2160, "scannedPoints": 2160}
//	  ],
//	  "metrics": [
//	    {"name": "spotlake_admission_admitted_total", "value": 1234}
//	  ]
//	}
//
// The -N suffix go test appends to benchmark names is the GOMAXPROCS the
// run used (absent means 1); it is split out as "cpus" so a -cpu=1,4
// matrix yields comparable pairs under one bare name. `loadgen:` rows
// (see cmd/spotlake-loadgen) become the `latency` section: p50/p99
// wall-clock latency at a fixed offered load (the row's concurrency),
// per traffic class plus the "all" aggregate — the latency-under-load
// series microbenchmarks cannot measure. `memstat:` rows (emitted by
// BenchmarkResidentHeap in internal/tsdb) become the `memory` section:
// resident heap bytes per point for each storage scenario, the number
// the cold block tier exists to shrink. bytesPerPoint is null when the
// scenario held no points, mirroring the nullable latency percentiles.
// `rollupstat:` rows (emitted by BenchmarkRollupQuery in internal/tsdb)
// become the `rollup` section: how many points each resolution tier
// returned and scanned for the same 90-day window, the scan-reduction
// series the rollup tiers exist to provide. `metric:` rows (emitted by
// spotlake-loadgen's end-of-run /api/v1/metrics scrape and by
// spotlake-collector's run summary) become the `metrics` section: the
// server-side registry counters behind the same run — admitted vs
// throttled vs shed, cache hits, maintenance checkpoints — so the
// artifact carries both sides of the measurement.
// Other lines (headers, PASS, ok) set metadata or are ignored, so the
// tool can be fed a whole `go test` transcript with a loadgen run
// appended.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"
)

type benchResult struct {
	Name       string  `json:"name"`
	CPUs       int     `json:"cpus"`
	FullName   string  `json:"fullName"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"nsPerOp"`
	// No omitempty: a genuine 0 B/op / 0 allocs/op measurement (the very
	// result an allocation fix aims for) must stay distinguishable in
	// the artifact from "not measured" in run-over-run diffs.
	BytesPerOp  float64 `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	// Extra carries custom b.ReportMetric columns (unit -> value), e.g.
	// BenchmarkSeal's compressed/raw ratio and points/s throughput.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// latencyResult is one loadgen row: percentile latency at a fixed
// offered load. P50Ms/P99Ms are null (absent) when the row had no
// successful requests to measure.
type latencyResult struct {
	Class       string   `json:"class"`
	Concurrency int      `json:"concurrency"`
	Requests    int64    `json:"requests"`
	OK          int64    `json:"ok"`
	Throttled   int64    `json:"throttled"`
	Shed        int64    `json:"shed"`
	Errors      int64    `json:"errors"`
	RPS         float64  `json:"rps"`
	P50Ms       *float64 `json:"p50Ms"`
	P99Ms       *float64 `json:"p99Ms"`
}

// memoryResult is one memstat row: the measured resident heap of a
// recovered store under one storage scenario. BytesPerPoint is null
// (absent) when the scenario held no points.
type memoryResult struct {
	Scenario      string   `json:"scenario"`
	Points        int64    `json:"points"`
	HeapBytes     int64    `json:"heapBytes"`
	BytesPerPoint *float64 `json:"bytesPerPoint"`
}

// rollupResult is one rollupstat row: the points a resolution tier
// returned and scanned serving the benchmark's fixed window. The raw
// tier's scannedPoints is the denominator of the reduction ratio.
type rollupResult struct {
	Tier          string `json:"tier"`
	WindowDays    int    `json:"windowDays"`
	Points        int64  `json:"points"`
	ScannedPoints int64  `json:"scannedPoints"`
}

// metricResult is one `metric:` row: a named registry sample scraped
// from /api/v1/metrics (loadgen) or logged at end of run (collector).
type metricResult struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

type benchFile struct {
	Schema     string        `json:"schema"`
	GOOS       string        `json:"goos,omitempty"`
	GOARCH     string        `json:"goarch,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []benchResult `json:"benchmarks"`
	// Latency holds loadgen rows; omitted entirely for pure
	// microbenchmark transcripts so pre-v2 consumers see no change.
	Latency []latencyResult `json:"latency,omitempty"`
	// Memory holds memstat rows; omitted for transcripts without a
	// resident-heap run, so pre-v3 consumers see no change.
	Memory []memoryResult `json:"memory,omitempty"`
	// Rollup holds rollupstat rows; omitted for transcripts without a
	// rollup-query run, so pre-v4 consumers see no change.
	Rollup []rollupResult `json:"rollup,omitempty"`
	// Metrics holds metric rows; omitted for transcripts without a
	// registry scrape, so pre-v5 consumers see no change.
	Metrics []metricResult `json:"metrics,omitempty"`
}

// benchLine matches one result line. Columns after ns/op are optional
// and order-fixed (-benchmem emits "B/op" then "allocs/op"; throughput
// columns like MB/s are skipped by the filler pattern).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

var (
	bytesCol  = regexp.MustCompile(`([0-9.]+) B/op`)
	allocsCol = regexp.MustCompile(`(\d+) allocs/op`)
	metricCol = regexp.MustCompile(`([0-9.]+(?:e[+-]?\d+)?) (\S+)`)
	cpuSuffix = regexp.MustCompile(`-(\d+)$`)
)

// loadgenLine matches one spotlake-loadgen result row. p50/p99 are NaN
// when the row measured no successful request.
var loadgenLine = regexp.MustCompile(
	`^loadgen: class=(\S+) concurrency=(\d+) requests=(\d+) ok=(\d+) throttled=(\d+) shed=(\d+) errors=(\d+) rps=([0-9.]+) p50ms=([0-9.]+|NaN) p99ms=([0-9.]+|NaN)$`)

// memstatLine matches one resident-heap row. bytesPerPoint is NaN when
// the scenario held no points.
var memstatLine = regexp.MustCompile(
	`^memstat: scenario=(\S+) points=(\d+) heapBytes=(\d+) bytesPerPoint=([0-9.]+|NaN)$`)

// rollupstatLine matches one rollup-tier row from BenchmarkRollupQuery.
var rollupstatLine = regexp.MustCompile(
	`^rollupstat: tier=(\S+) windowDays=(\d+) points=(\d+) scanned=(\d+)$`)

// metricLine matches one registry-sample row. Values are %g-formatted
// floats (scientific notation for large counters) and may be ±Inf/NaN.
var metricLine = regexp.MustCompile(
	`^metric: name=([a-zA-Z_:][a-zA-Z0-9_:]*) value=([0-9.eE+-]+|\+Inf|-Inf|NaN)$`)

// parseRollupstat unpacks a rollupstatLine submatch; the regexp
// guarantees the numeric fields parse.
func parseRollupstat(m []string) rollupResult {
	res := rollupResult{Tier: m[1]}
	days, _ := strconv.ParseInt(m[2], 10, 64)
	res.WindowDays = int(days)
	res.Points, _ = strconv.ParseInt(m[3], 10, 64)
	res.ScannedPoints, _ = strconv.ParseInt(m[4], 10, 64)
	return res
}

// parseMetric unpacks a metricLine submatch. Non-finite values (±Inf,
// NaN) are reported not-ok and dropped: encoding/json cannot represent
// them, and the registry only emits finite non-bucket samples anyway.
func parseMetric(m []string) (metricResult, bool) {
	v, err := strconv.ParseFloat(m[2], 64)
	if err != nil || math.IsInf(v, 0) || math.IsNaN(v) {
		return metricResult{}, false
	}
	return metricResult{Name: m[1], Value: v}, true
}

// parseMemstat unpacks a memstatLine submatch; the regexp guarantees
// the numeric fields parse.
func parseMemstat(m []string) memoryResult {
	res := memoryResult{Scenario: m[1]}
	res.Points, _ = strconv.ParseInt(m[2], 10, 64)
	res.HeapBytes, _ = strconv.ParseInt(m[3], 10, 64)
	if m[4] != "NaN" {
		v, _ := strconv.ParseFloat(m[4], 64)
		res.BytesPerPoint = &v
	}
	return res
}

// parseLoadgen unpacks a loadgenLine submatch; the regexp guarantees the
// numeric fields parse.
func parseLoadgen(m []string) latencyResult {
	atoi := func(s string) int64 { n, _ := strconv.ParseInt(s, 10, 64); return n }
	res := latencyResult{
		Class:       m[1],
		Concurrency: int(atoi(m[2])),
		Requests:    atoi(m[3]),
		OK:          atoi(m[4]),
		Throttled:   atoi(m[5]),
		Shed:        atoi(m[6]),
		Errors:      atoi(m[7]),
	}
	res.RPS, _ = strconv.ParseFloat(m[8], 64)
	if m[9] != "NaN" {
		v, _ := strconv.ParseFloat(m[9], 64)
		res.P50Ms = &v
	}
	if m[10] != "NaN" {
		v, _ := strconv.ParseFloat(m[10], 64)
		res.P99Ms = &v
	}
	return res
}

func parse(r io.Reader) (benchFile, error) {
	out := benchFile{Schema: "spotlake-bench/v5", Benchmarks: []benchResult{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if lm := loadgenLine.FindStringSubmatch(line); lm != nil {
			out.Latency = append(out.Latency, parseLoadgen(lm))
			continue
		}
		if mm := memstatLine.FindStringSubmatch(line); mm != nil {
			out.Memory = append(out.Memory, parseMemstat(mm))
			continue
		}
		if rm := rollupstatLine.FindStringSubmatch(line); rm != nil {
			out.Rollup = append(out.Rollup, parseRollupstat(rm))
			continue
		}
		if km := metricLine.FindStringSubmatch(line); km != nil {
			if res, ok := parseMetric(km); ok {
				out.Metrics = append(out.Metrics, res)
			}
			continue
		}
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.GOOS = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			out.GOARCH = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		full := m[1]
		name, cpus := full, 1
		if sm := cpuSuffix.FindStringSubmatch(full); sm != nil {
			// go test appends the -N GOMAXPROCS suffix only when N > 1,
			// so a trailing -1 is always part of the benchmark's own name
			// (e.g. .../region=us-east-1) and must not be stripped.
			if n, err := strconv.Atoi(sm[1]); err == nil && n > 1 {
				name, cpus = strings.TrimSuffix(full, sm[0]), n
			}
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return out, fmt.Errorf("benchjson: iterations in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return out, fmt.Errorf("benchjson: ns/op in %q: %w", line, err)
		}
		res := benchResult{Name: name, CPUs: cpus, FullName: full, Iterations: iters, NsPerOp: ns}
		if bm := bytesCol.FindStringSubmatch(m[4]); bm != nil {
			res.BytesPerOp, _ = strconv.ParseFloat(bm[1], 64)
		}
		if am := allocsCol.FindStringSubmatch(m[4]); am != nil {
			res.AllocsPerOp, _ = strconv.ParseInt(am[1], 10, 64)
		}
		// Any remaining "<value> <unit>" column is a custom
		// b.ReportMetric the benchmark chose to record — keep it.
		for _, xm := range metricCol.FindAllStringSubmatch(m[4], -1) {
			switch xm[2] {
			case "B/op", "allocs/op":
				continue
			}
			v, err := strconv.ParseFloat(xm[1], 64)
			if err != nil {
				continue
			}
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			res.Extra[xm[2]] = v
		}
		out.Benchmarks = append(out.Benchmarks, res)
	}
	return out, sc.Err()
}

func main() {
	in := io.Reader(os.Stdin)
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	out, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 && len(out.Latency) == 0 && len(out.Memory) == 0 && len(out.Metrics) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark, loadgen, memstat, or metric result lines in input")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
