package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	const in = `goos: linux
goarch: amd64
pkg: repro/internal/tsdb
cpu: AMD EPYC 7B13
BenchmarkAppendParallel      	 3181405	       377.5 ns/op	      48 B/op	       2 allocs/op
BenchmarkAppendParallel-4    	 5000000	       210.0 ns/op	      47 B/op	       2 allocs/op
BenchmarkRecovery/full-replay-4         	      66	  16500000 ns/op
BenchmarkQueryFanOut/shards=8/workers=16-4         	     480	   2450000 ns/op	  512000 B/op	    4096 allocs/op
PASS
ok  	repro/internal/tsdb	12.3s
`
	out, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.GOOS != "linux" || out.GOARCH != "amd64" || out.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header metadata: %+v", out)
	}
	if len(out.Benchmarks) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(out.Benchmarks), out.Benchmarks)
	}
	b0 := out.Benchmarks[0]
	if b0.Name != "BenchmarkAppendParallel" || b0.CPUs != 1 || b0.NsPerOp != 377.5 || b0.AllocsPerOp != 2 || b0.BytesPerOp != 48 {
		t.Fatalf("cpu=1 line: %+v", b0)
	}
	b1 := out.Benchmarks[1]
	if b1.Name != "BenchmarkAppendParallel" || b1.CPUs != 4 || b1.FullName != "BenchmarkAppendParallel-4" {
		t.Fatalf("cpu=4 line: %+v", b1)
	}
	b2 := out.Benchmarks[2]
	if b2.Name != "BenchmarkRecovery/full-replay" || b2.CPUs != 4 || b2.AllocsPerOp != 0 {
		t.Fatalf("sub-benchmark line: %+v", b2)
	}
	b3 := out.Benchmarks[3]
	if b3.Name != "BenchmarkQueryFanOut/shards=8/workers=16" || b3.CPUs != 4 || b3.AllocsPerOp != 4096 {
		t.Fatalf("nested sub-benchmark line: %+v", b3)
	}
}

// TestParseLoadgenRows: spotlake-loadgen result rows interleaved with a
// bench transcript become the artifact's latency section, with NaN
// percentiles (no successful request to measure) kept distinguishable
// from genuine zeros as JSON nulls.
func TestParseLoadgenRows(t *testing.T) {
	const in = `goos: linux
BenchmarkAppendParallel      	 3181405	       377.5 ns/op
loadgen: class=cursor concurrency=5 requests=1234 ok=1230 throttled=4 shed=0 errors=0 rps=123.4 p50ms=0.520 p99ms=2.310
loadgen: class=all concurrency=16 requests=3000 ok=0 throttled=3000 shed=0 errors=0 rps=300.0 p50ms=NaN p99ms=NaN
PASS
`
	out, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema != "spotlake-bench/v5" {
		t.Fatalf("schema = %q, want spotlake-bench/v5", out.Schema)
	}
	if len(out.Benchmarks) != 1 || len(out.Latency) != 2 {
		t.Fatalf("parsed %d benchmarks / %d latency rows, want 1 / 2", len(out.Benchmarks), len(out.Latency))
	}
	l0 := out.Latency[0]
	if l0.Class != "cursor" || l0.Concurrency != 5 || l0.Requests != 1234 || l0.OK != 1230 ||
		l0.Throttled != 4 || l0.RPS != 123.4 {
		t.Fatalf("cursor row: %+v", l0)
	}
	if l0.P50Ms == nil || *l0.P50Ms != 0.52 || l0.P99Ms == nil || *l0.P99Ms != 2.31 {
		t.Fatalf("cursor row percentiles: %+v %+v", l0.P50Ms, l0.P99Ms)
	}
	l1 := out.Latency[1]
	if l1.Class != "all" || l1.Throttled != 3000 || l1.P50Ms != nil || l1.P99Ms != nil {
		t.Fatalf("all-throttled row: %+v", l1)
	}
}

// TestParseCustomMetrics: custom b.ReportMetric columns (BenchmarkSeal's
// compression ratio and throughput) land in the row's extra map; the
// standard -benchmem columns stay in their own fields.
func TestParseCustomMetrics(t *testing.T) {
	const in = `BenchmarkSeal 	       1	  11145487 ns/op	         0.03494 compressed/raw	  10290084 points/s
BenchmarkAppend 	 1000000	       377.5 ns/op	      48 B/op	       2 allocs/op
`
	out, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 2 {
		t.Fatalf("parsed %d results, want 2", len(out.Benchmarks))
	}
	b0 := out.Benchmarks[0]
	if b0.Extra["compressed/raw"] != 0.03494 || b0.Extra["points/s"] != 10290084 {
		t.Fatalf("extra metrics: %+v", b0.Extra)
	}
	b1 := out.Benchmarks[1]
	if b1.Extra != nil || b1.BytesPerOp != 48 || b1.AllocsPerOp != 2 {
		t.Fatalf("benchmem row grew extra metrics: %+v", b1)
	}
}

// TestParseMemstatRows: BenchmarkResidentHeap memstat rows interleaved
// with a bench transcript become the artifact's memory section, with a
// NaN bytes-per-point (scenario held no points) kept as JSON null.
func TestParseMemstatRows(t *testing.T) {
	const in = `goos: linux
memstat: scenario=all-hot points=327680 heapBytes=10766288 bytesPerPoint=32.86
BenchmarkResidentHeap/all-hot      	       1	 488771698 ns/op	        32.86 heapB/point
memstat: scenario=cold-sealed points=327680 heapBytes=1082040 bytesPerPoint=3.30
memstat: scenario=empty points=0 heapBytes=0 bytesPerPoint=NaN
PASS
`
	out, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Memory) != 3 || len(out.Benchmarks) != 1 {
		t.Fatalf("parsed %d memory rows / %d benchmarks, want 3 / 1", len(out.Memory), len(out.Benchmarks))
	}
	m0 := out.Memory[0]
	if m0.Scenario != "all-hot" || m0.Points != 327680 || m0.HeapBytes != 10766288 ||
		m0.BytesPerPoint == nil || *m0.BytesPerPoint != 32.86 {
		t.Fatalf("all-hot row: %+v", m0)
	}
	m1 := out.Memory[1]
	if m1.Scenario != "cold-sealed" || m1.BytesPerPoint == nil || *m1.BytesPerPoint != 3.30 {
		t.Fatalf("cold-sealed row: %+v", m1)
	}
	if m2 := out.Memory[2]; m2.Points != 0 || m2.BytesPerPoint != nil {
		t.Fatalf("empty row: %+v", m2)
	}
}

// TestParseRollupstatRows: BenchmarkRollupQuery rollupstat rows become
// the artifact's rollup section.
func TestParseRollupstatRows(t *testing.T) {
	const in = `goos: linux
rollupstat: tier=raw windowDays=90 points=129600 scanned=129600
BenchmarkRollupQuery/raw      	       1	   1316011 ns/op	    129600 points	    129600 scanned
rollupstat: tier=1h windowDays=90 points=2158 scanned=2158
rollupstat: tier=1d windowDays=90 points=89 scanned=89
PASS
`
	out, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rollup) != 3 || len(out.Benchmarks) != 1 {
		t.Fatalf("parsed %d rollup rows / %d benchmarks, want 3 / 1", len(out.Rollup), len(out.Benchmarks))
	}
	r0 := out.Rollup[0]
	if r0.Tier != "raw" || r0.WindowDays != 90 || r0.Points != 129600 || r0.ScannedPoints != 129600 {
		t.Fatalf("raw row: %+v", r0)
	}
	if r1 := out.Rollup[1]; r1.Tier != "1h" || r1.ScannedPoints != 2158 {
		t.Fatalf("1h row: %+v", r1)
	}
}

// TestParseMetricRows: registry-sample rows (loadgen's end-of-run
// /api/v1/metrics scrape, or spotlake-collector's run summary) become
// the artifact's metrics section. %g scientific notation parses;
// non-finite values are dropped rather than breaking JSON encoding;
// histogram bucket rows never appear (the emitters skip them), but a
// stray one must not match the plain name=value shape with its label
// block intact.
func TestParseMetricRows(t *testing.T) {
	const in = `goos: linux
metric: name=spotlake_admission_admitted_total value=1234
metric: name=spotlake_store_cold_compressed_bytes value=1.31072e+06
metric: name=spotlake_replication_seconds_behind value=0.25
metric: name=spotlake_bogus_gauge value=+Inf
loadgen: class=all concurrency=16 requests=3000 ok=3000 throttled=0 shed=0 errors=0 rps=300.0 p50ms=1.000 p99ms=2.000
PASS
`
	out, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Metrics) != 3 || len(out.Latency) != 1 {
		t.Fatalf("parsed %d metric rows / %d latency rows, want 3 / 1: %+v", len(out.Metrics), len(out.Latency), out.Metrics)
	}
	if m0 := out.Metrics[0]; m0.Name != "spotlake_admission_admitted_total" || m0.Value != 1234 {
		t.Fatalf("admitted row: %+v", m0)
	}
	if m1 := out.Metrics[1]; m1.Name != "spotlake_store_cold_compressed_bytes" || m1.Value != 1.31072e+06 {
		t.Fatalf("scientific-notation row: %+v", m1)
	}
	if m2 := out.Metrics[2]; m2.Value != 0.25 {
		t.Fatalf("fractional gauge row: %+v", m2)
	}
}

// TestParseMetricOnly: a transcript with only metric rows is still a
// valid artifact — the collector's batch summary has no bench or
// loadgen rows at all.
func TestParseMetricOnly(t *testing.T) {
	out, err := parse(strings.NewReader(
		"metric: name=spotlake_store_points value=42\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Metrics) != 1 || len(out.Benchmarks) != 0 {
		t.Fatalf("metrics %d benchmarks %d, want 1 and 0", len(out.Metrics), len(out.Benchmarks))
	}
}

// TestParseLoadgenOnly: a transcript with only loadgen rows (no
// microbenchmarks) is still a valid artifact.
func TestParseLoadgenOnly(t *testing.T) {
	out, err := parse(strings.NewReader(
		"loadgen: class=hot concurrency=8 requests=100 ok=100 throttled=0 shed=0 errors=0 rps=10.0 p50ms=1.000 p99ms=2.000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Latency) != 1 || len(out.Benchmarks) != 0 {
		t.Fatalf("latency %d benchmarks %d, want 1 and 0", len(out.Latency), len(out.Benchmarks))
	}
}

// TestParseKeepsIntrinsicDashOne pins the GOMAXPROCS-suffix heuristic: go
// test appends -N only for N > 1, so a name's own trailing -1 (a region
// like us-east-1 at cpu=1, where no suffix is added) must survive — else
// the cpu=1 and cpu=4 rows of the same benchmark stop pairing by name.
func TestParseKeepsIntrinsicDashOne(t *testing.T) {
	const in = `BenchmarkQuery/region=us-east-1      	     100	   1000 ns/op
BenchmarkQuery/region=us-east-1-4    	     100	    500 ns/op
`
	out, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 2 {
		t.Fatalf("parsed %d results, want 2", len(out.Benchmarks))
	}
	for i, wantCPU := range []int{1, 4} {
		b := out.Benchmarks[i]
		if b.Name != "BenchmarkQuery/region=us-east-1" || b.CPUs != wantCPU {
			t.Fatalf("row %d: name %q cpus %d, want the intrinsic -1 kept and cpus %d", i, b.Name, b.CPUs, wantCPU)
		}
	}
}
