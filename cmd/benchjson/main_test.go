package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	const in = `goos: linux
goarch: amd64
pkg: repro/internal/tsdb
cpu: AMD EPYC 7B13
BenchmarkAppendParallel      	 3181405	       377.5 ns/op	      48 B/op	       2 allocs/op
BenchmarkAppendParallel-4    	 5000000	       210.0 ns/op	      47 B/op	       2 allocs/op
BenchmarkRecovery/full-replay-4         	      66	  16500000 ns/op
BenchmarkQueryFanOut/shards=8/workers=16-4         	     480	   2450000 ns/op	  512000 B/op	    4096 allocs/op
PASS
ok  	repro/internal/tsdb	12.3s
`
	out, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.GOOS != "linux" || out.GOARCH != "amd64" || out.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header metadata: %+v", out)
	}
	if len(out.Benchmarks) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(out.Benchmarks), out.Benchmarks)
	}
	b0 := out.Benchmarks[0]
	if b0.Name != "BenchmarkAppendParallel" || b0.CPUs != 1 || b0.NsPerOp != 377.5 || b0.AllocsPerOp != 2 || b0.BytesPerOp != 48 {
		t.Fatalf("cpu=1 line: %+v", b0)
	}
	b1 := out.Benchmarks[1]
	if b1.Name != "BenchmarkAppendParallel" || b1.CPUs != 4 || b1.FullName != "BenchmarkAppendParallel-4" {
		t.Fatalf("cpu=4 line: %+v", b1)
	}
	b2 := out.Benchmarks[2]
	if b2.Name != "BenchmarkRecovery/full-replay" || b2.CPUs != 4 || b2.AllocsPerOp != 0 {
		t.Fatalf("sub-benchmark line: %+v", b2)
	}
	b3 := out.Benchmarks[3]
	if b3.Name != "BenchmarkQueryFanOut/shards=8/workers=16" || b3.CPUs != 4 || b3.AllocsPerOp != 4096 {
		t.Fatalf("nested sub-benchmark line: %+v", b3)
	}
}

// TestParseKeepsIntrinsicDashOne pins the GOMAXPROCS-suffix heuristic: go
// test appends -N only for N > 1, so a name's own trailing -1 (a region
// like us-east-1 at cpu=1, where no suffix is added) must survive — else
// the cpu=1 and cpu=4 rows of the same benchmark stop pairing by name.
func TestParseKeepsIntrinsicDashOne(t *testing.T) {
	const in = `BenchmarkQuery/region=us-east-1      	     100	   1000 ns/op
BenchmarkQuery/region=us-east-1-4    	     100	    500 ns/op
`
	out, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 2 {
		t.Fatalf("parsed %d results, want 2", len(out.Benchmarks))
	}
	for i, wantCPU := range []int{1, 4} {
		b := out.Benchmarks[i]
		if b.Name != "BenchmarkQuery/region=us-east-1" || b.CPUs != wantCPU {
			t.Fatalf("row %d: name %q cpus %d, want the intrinsic -1 kept and cpus %d", i, b.Name, b.CPUs, wantCPU)
		}
	}
}
