// Command spotlake-collector runs a batch collection: it simulates the
// cloud for the requested number of days, collecting all three spot
// datasets into a persistent archive directory, then prints collection
// statistics and exits. The directory can then be served by
// spotlake-server, analyzed offline, or resumed: re-running against a
// non-empty directory fast-forwards the simulation past the recovered
// data and appends -days more on top (an interrupted run's replayed WAL
// tail counts toward -checkpoint-bytes, so the first over-threshold tick
// of the resumed run folds it into a checkpoint).
//
// The -data directory uses the rotated segment layout (MANIFEST, per-shard
// wal-<shard>-<seq>.log segment chains, checkpoint snapshot); directories
// written by older builds — a single points.wal, or the one-segment-per-
// shard v1 layout — are migrated automatically on open. The active segment
// of each shard seals and rotates past -rotate-bytes.
//
// The store maintains itself: a daemon inside the tsdb (polling every
// -maintenance-interval of wall time) checkpoints whenever the WAL grows
// -checkpoint-bytes past the last checkpoint or any shard accumulates
// -max-sealed-segments sealed WAL segments, and the sealed-chain cap is
// additionally enforced on the append path, so no chain ever exceeds it.
// Collection also checkpoints every -checkpoint-interval of simulated
// time and once at the end, so a restart's replay is bounded by wall
// clock, bytes written, and chain length. Set 0 to disable any trigger.
//
// Usage:
//
//	spotlake-collector -data DIR [-days 30] [-frac 0.12] [-interval 10m]
//	                   [-seed 22] [-exact] [-checkpoint-interval 24h]
//	                   [-checkpoint-bytes 67108864] [-rotate-bytes 8388608]
//	                   [-max-sealed-segments 64] [-maintenance-interval 1s]
//	                   [-snapshot FILE]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/collector"
	"repro/internal/obs"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spotlake-collector: ")

	var (
		dataDir    = flag.String("data", "", "archive data directory (required; legacy single-WAL dirs migrate automatically)")
		days       = flag.Int("days", 30, "simulated days to collect")
		frac       = flag.Float64("frac", 0.12, "catalog fraction (1.0 = all 547 types)")
		interval   = flag.Duration("interval", 10*time.Minute, "collection cadence (paper: 10m)")
		seed       = flag.Uint64("seed", 22, "simulation seed")
		exact      = flag.Bool("exact", false, "use the exact branch-and-bound query packer instead of FFD")
		cpInterval = flag.Duration("checkpoint-interval", 24*time.Hour, "simulated time between archive checkpoints (0 disables)")
		cpBytes    = flag.Int64("checkpoint-bytes", 64<<20, "checkpoint as soon as the WAL grows this many bytes past the last checkpoint (0 disables the size trigger; enforced by the store's maintenance daemon)")
		rotBytes   = flag.Int64("rotate-bytes", tsdb.DefaultRotateBytes, "seal and rotate a shard's WAL segment past this many bytes (negative disables rotation)")
		maxSealed  = flag.Int("max-sealed-segments", 64, "checkpoint before any shard accumulates this many sealed WAL segments (0 disables the cap)")
		maintIv    = flag.Duration("maintenance-interval", tsdb.DefaultMaintenanceInterval, "store maintenance daemon poll period (negative disables the daemon)")
		hotTail    = flag.Int("hot-tail", 0, "per-series points kept hot (uncompressed) ahead of the sealed block tier; 0 = default, negative disables sealing")
		blockPts   = flag.Int("block-points", 0, "points per compressed cold block (0 = default)")
		blockCache = flag.Int64("block-cache-bytes", 0, "decoded cold-block LRU cache budget in bytes (0 = default, negative disables)")
		sealAfter  = flag.Int64("seal-after-hot-points", 0, "maintenance seals history once this many hot points accumulate past the last seal (0 disables the trigger)")
		snapshot   = flag.String("snapshot", "", "also export a standalone snapshot to this file (deprecated: the data dir checkpoints itself)")
		retainRaw  = flag.String("retain-raw", "", "per-dataset raw retention horizons, comma-separated <dataset>=<horizon> (e.g. price=90d,sps=720h); raw points past the horizon are dropped once 1h/1d rollups cover them (requires sealing)")
	)
	flag.Parse()
	if *dataDir == "" {
		log.Fatal("-data DIR is required")
	}

	var cat *catalog.Catalog
	if *frac >= 1 {
		cat = catalog.Standard()
	} else {
		cat = catalog.Sample(*frac)
	}
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, *seed, cloudsim.DefaultParams())
	var retain map[string]time.Duration
	if *retainRaw != "" {
		var err error
		if retain, err = tsdb.ParseRetainRaw(*retainRaw); err != nil {
			log.Fatalf("parsing -retain-raw: %v", err)
		}
	}
	db, err := tsdb.OpenWithOptions(*dataDir, tsdb.Options{
		RotateBytes:          *rotBytes,
		CheckpointAfterBytes: *cpBytes,
		MaxSealedSegments:    *maxSealed,
		MaintenanceInterval:  *maintIv,
		HotTailPoints:        *hotTail,
		BlockPoints:          *blockPts,
		BlockCacheBytes:      *blockCache,
		SealAfterHotPoints:   *sealAfter,
		RetainRaw:            retain,
	})
	if err != nil {
		log.Fatalf("opening %s: %v", *dataDir, err)
	}
	defer db.Close()

	// The batch collector carries the same metrics registry the server
	// does (default-on, no flag): the store's counters register once here,
	// and the end of the run prints them as machine-greppable rows.
	reg := obs.NewRegistry()
	tsdb.RegisterMetrics(reg, func() *tsdb.DB { return db })

	// Resume support: recovered data (checkpoint + WAL tail) sits in
	// simulated time after the clock's epoch start; fast-forward so the
	// new run appends after it instead of failing out-of-order. The same
	// catch-up spotlake-server does. Land one tick PAST the last
	// recovered timestamp, not on it: the collector's first action is an
	// immediate collection at clk.Now(), and the store accepts same-
	// timestamp appends (only strictly-earlier ones are out of order), so
	// resuming exactly onto MaxTime would write duplicate-timestamp
	// points next to the recovered ones.
	if maxAt, ok := db.MaxTime(); ok && !maxAt.Before(clk.Now()) {
		log.Printf("resuming archive with %d points through %s", db.PointCount(), maxAt.Format(time.RFC3339))
		clk.RunFor(maxAt.Add(*interval).Sub(clk.Now()))
	}

	cfg := collector.DefaultConfig()
	cfg.ScoreInterval = *interval
	cfg.AdvisorInterval = *interval
	cfg.PriceInterval = *interval
	cfg.ExactPacking = *exact
	cfg.CheckpointInterval = *cpInterval
	// Deprecation shim: the byte trigger lives in the store now; the
	// collector's own copy stands down when the store self-maintains but
	// keeps old configs working against stores opened without the option.
	cfg.CheckpointAfterBytes = *cpBytes
	col, err := collector.New(cloud, db, cfg)
	if err != nil {
		log.Fatalf("building collector: %v", err)
	}
	log.Printf("plan: %d optimized queries (naive %d) over %d accounts",
		len(col.Plan().Queries), col.Plan().NaiveQueries, col.Accounts())

	start := time.Now()
	if err := col.Run(time.Duration(*days) * 24 * time.Hour); err != nil {
		log.Fatalf("collection: %v", err)
	}
	if err := db.Flush(); err != nil {
		log.Fatalf("flush: %v", err)
	}
	// A final checkpoint folds the run's WAL tail into a snapshot, so the
	// next open (collector resume or spotlake-server) bulk-loads instead
	// of replaying the whole collection's log.
	if err := db.Checkpoint(); err != nil {
		log.Fatalf("checkpoint: %v", err)
	}
	st := col.Stats()
	log.Printf("collected %d simulated days in %v", *days, time.Since(start).Round(time.Millisecond))
	log.Printf("score ticks %d, advisor ticks %d, price ticks %d", st.ScoreTicks, st.AdvisorTicks, st.PriceTicks)
	log.Printf("queries issued %d (errors %d), points stored %d", st.QueriesIssued, st.QueryErrors, st.PointsStored)
	log.Printf("checkpoints: %d periodic + %d size-triggered (%d errors) + %d store-maintenance (%d by-bytes, %d chain-cap, %d errors) + 1 final",
		st.Checkpoints, st.SizeCheckpoints, st.CheckpointErrors,
		st.MaintenanceCheckpoints, st.ForcedByBytes, st.ForcedByChainLength, st.MaintenanceErrors)
	log.Printf("archive: %d series, %d points in %s", db.SeriesCount(), db.PointCount(), *dataDir)
	// One `metric:` row per registry sample on stdout, unprefixed — the
	// same name=value format spotlake-loadgen emits from scrapes, so
	// cmd/benchjson folds a collector transcript the same way.
	for _, sm := range reg.Samples() {
		if strings.HasSuffix(sm.Name, "_bucket") {
			continue
		}
		fmt.Printf("metric: name=%s value=%g\n", sm.Name, sm.Value)
	}
	if *snapshot != "" {
		if err := db.SaveSnapshot(*snapshot); err != nil {
			log.Fatalf("snapshot: %v", err)
		}
		log.Printf("snapshot saved to %s", *snapshot)
	}
}
