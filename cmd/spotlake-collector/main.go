// Command spotlake-collector runs a batch collection: it simulates the
// cloud for the requested number of days, collecting all three spot
// datasets into a persistent archive directory, then prints collection
// statistics and exits. The directory can then be served by
// spotlake-server or analyzed offline.
//
// The -data directory uses the rotated segment layout (MANIFEST, per-shard
// wal-<shard>-<seq>.log segment chains, checkpoint snapshot); directories
// written by older builds — a single points.wal, or the one-segment-per-
// shard v1 layout — are migrated automatically on open. The active segment
// of each shard seals and rotates past -rotate-bytes. Collection
// checkpoints every -checkpoint-interval of simulated time, whenever the
// WAL grows -checkpoint-bytes past the last checkpoint (set 0 to disable
// either trigger), and once at the end, so a restart's replay is bounded
// by both wall clock and bytes written.
//
// Usage:
//
//	spotlake-collector -data DIR [-days 30] [-frac 0.12] [-interval 10m]
//	                   [-seed 22] [-exact] [-checkpoint-interval 24h]
//	                   [-checkpoint-bytes 67108864] [-rotate-bytes 8388608]
//	                   [-snapshot FILE]
package main

import (
	"flag"
	"log"
	"time"

	"repro/internal/catalog"
	"repro/internal/cloudsim"
	"repro/internal/collector"
	"repro/internal/simclock"
	"repro/internal/tsdb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spotlake-collector: ")

	var (
		dataDir    = flag.String("data", "", "archive data directory (required; legacy single-WAL dirs migrate automatically)")
		days       = flag.Int("days", 30, "simulated days to collect")
		frac       = flag.Float64("frac", 0.12, "catalog fraction (1.0 = all 547 types)")
		interval   = flag.Duration("interval", 10*time.Minute, "collection cadence (paper: 10m)")
		seed       = flag.Uint64("seed", 22, "simulation seed")
		exact      = flag.Bool("exact", false, "use the exact branch-and-bound query packer instead of FFD")
		cpInterval = flag.Duration("checkpoint-interval", 24*time.Hour, "simulated time between archive checkpoints (0 disables)")
		cpBytes    = flag.Int64("checkpoint-bytes", 64<<20, "checkpoint as soon as the WAL grows this many bytes past the last checkpoint (0 disables the size trigger)")
		rotBytes   = flag.Int64("rotate-bytes", tsdb.DefaultRotateBytes, "seal and rotate a shard's WAL segment past this many bytes (negative disables rotation)")
		snapshot   = flag.String("snapshot", "", "also export a standalone snapshot to this file (deprecated: the data dir checkpoints itself)")
	)
	flag.Parse()
	if *dataDir == "" {
		log.Fatal("-data DIR is required")
	}

	var cat *catalog.Catalog
	if *frac >= 1 {
		cat = catalog.Standard()
	} else {
		cat = catalog.Sample(*frac)
	}
	clk := simclock.NewAtEpoch()
	cloud := cloudsim.New(cat, clk, *seed, cloudsim.DefaultParams())
	db, err := tsdb.OpenWithOptions(*dataDir, tsdb.Options{RotateBytes: *rotBytes})
	if err != nil {
		log.Fatalf("opening %s: %v", *dataDir, err)
	}
	defer db.Close()

	cfg := collector.DefaultConfig()
	cfg.ScoreInterval = *interval
	cfg.AdvisorInterval = *interval
	cfg.PriceInterval = *interval
	cfg.ExactPacking = *exact
	cfg.CheckpointInterval = *cpInterval
	cfg.CheckpointAfterBytes = *cpBytes
	col, err := collector.New(cloud, db, cfg)
	if err != nil {
		log.Fatalf("building collector: %v", err)
	}
	log.Printf("plan: %d optimized queries (naive %d) over %d accounts",
		len(col.Plan().Queries), col.Plan().NaiveQueries, col.Accounts())

	start := time.Now()
	if err := col.Run(time.Duration(*days) * 24 * time.Hour); err != nil {
		log.Fatalf("collection: %v", err)
	}
	if err := db.Flush(); err != nil {
		log.Fatalf("flush: %v", err)
	}
	// A final checkpoint folds the run's WAL tail into a snapshot, so the
	// next open (collector resume or spotlake-server) bulk-loads instead
	// of replaying the whole collection's log.
	if err := db.Checkpoint(); err != nil {
		log.Fatalf("checkpoint: %v", err)
	}
	st := col.Stats()
	log.Printf("collected %d simulated days in %v", *days, time.Since(start).Round(time.Millisecond))
	log.Printf("score ticks %d, advisor ticks %d, price ticks %d", st.ScoreTicks, st.AdvisorTicks, st.PriceTicks)
	log.Printf("queries issued %d (errors %d), points stored %d", st.QueriesIssued, st.QueryErrors, st.PointsStored)
	log.Printf("checkpoints: %d periodic + %d size-triggered (%d errors) + 1 final",
		st.Checkpoints, st.SizeCheckpoints, st.CheckpointErrors)
	log.Printf("archive: %d series, %d points in %s", db.SeriesCount(), db.PointCount(), *dataDir)
	if *snapshot != "" {
		if err := db.SaveSnapshot(*snapshot); err != nil {
			log.Fatalf("snapshot: %v", err)
		}
		log.Printf("snapshot saved to %s", *snapshot)
	}
}
