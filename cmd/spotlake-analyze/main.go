// Command spotlake-analyze runs the paper's Section 5 analyses offline
// against a persistent archive directory previously written by
// spotlake-collector (or spotlake-server -data). It is the batch
// counterpart of the web service: point it at the data and it prints the
// score distributions, class/size means, correlations, contradiction
// histogram, and update frequencies.
//
// Usage:
//
//	spotlake-analyze -data DIR [-frac 0.12] [-csv DIR]
//
// The catalog fraction must match the one the archive was collected with
// (types not present in the archive are simply absent from the output).
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/analysis"
	"repro/internal/catalog"
	"repro/internal/tsdb"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spotlake-analyze: ")

	var (
		dataDir = flag.String("data", "", "tsdb directory (required)")
		frac    = flag.Float64("frac", 0.12, "catalog fraction the archive was collected with")
	)
	flag.Parse()
	if *dataDir == "" {
		log.Fatal("-data DIR is required")
	}

	db, err := tsdb.Open(*dataDir)
	if err != nil {
		log.Fatalf("opening %s: %v", *dataDir, err)
	}
	defer db.Close()
	if db.PointCount() == 0 {
		log.Fatalf("archive %s is empty; run spotlake-collector first", *dataDir)
	}
	var cat *catalog.Catalog
	if *frac >= 1 {
		cat = catalog.Standard()
	} else {
		cat = catalog.Sample(*frac)
	}

	// Determine the archive's time span from its series.
	var from, to time.Time
	for _, k := range db.Keys(tsdb.KeyFilter{}) {
		pts, err := db.Query(k, time.Time{}, time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC))
		if err != nil {
			log.Fatalf("query %v: %v", k, err)
		}
		if len(pts) == 0 {
			continue
		}
		if from.IsZero() || pts[0].At.Before(from) {
			from = pts[0].At
		}
		if last := pts[len(pts)-1].At; last.After(to) {
			to = last
		}
	}
	fmt.Printf("archive: %d series, %d points, %s .. %s (%.1f days)\n\n",
		db.SeriesCount(), db.PointCount(),
		from.Format("2006-01-02"), to.Format("2006-01-02"), to.Sub(from).Hours()/24)

	fmt.Println("== value distributions (Table 2) ==")
	sps := analysis.ValueDistribution(db, tsdb.DatasetPlacementScore, from, to, 2*time.Hour)
	ifd := analysis.ValueDistribution(db, tsdb.DatasetInterruptFree, from, to, 2*time.Hour)
	for _, v := range []float64{3.0, 2.5, 2.0, 1.5, 1.0} {
		fmt.Printf("  %.1f: sps %5.1f%%  if %5.1f%%\n", v, sps[v]*100, ifd[v]*100)
	}

	fmt.Println("\n== class means (Figure 3) ==")
	spsMeans := analysis.ClassMeans(db, cat, tsdb.DatasetPlacementScore, from, to)
	ifMeans := analysis.ClassMeans(db, cat, tsdb.DatasetInterruptFree, from, to)
	for _, cl := range catalog.Classes {
		if _, ok := spsMeans[cl]; !ok {
			continue
		}
		fmt.Printf("  %-4s sps %.2f  if %.2f\n", cl, spsMeans[cl], ifMeans[cl])
	}
	fmt.Printf("  overall: sps %.2f  if %.2f\n",
		analysis.OverallMean(db, tsdb.DatasetPlacementScore, from, to),
		analysis.OverallMean(db, tsdb.DatasetInterruptFree, from, to))

	fmt.Println("\n== size means (Figure 5) ==")
	for _, row := range analysis.SizeMeans(db, cat, from, to, 2) {
		fmt.Printf("  %-9s sps %.2f  if %.2f  (%d types)\n", row.Size, row.MeanSPS, row.MeanIF, row.NumTypes)
	}

	fmt.Println("\n== correlations (Figure 8) ==")
	corr := analysis.Correlations(db, from, to, 2*time.Hour)
	show := func(name string, xs []float64) {
		c := analysis.NewCDF(xs)
		if c.N() == 0 {
			fmt.Printf("  %-14s no data\n", name)
			return
		}
		fmt.Printf("  %-14s median %+.2f  p10 %+.2f  p90 %+.2f  (n=%d)\n",
			name, c.Quantile(0.5), c.Quantile(0.1), c.Quantile(0.9), c.N())
	}
	show("sps vs if", corr.SPSvsIF)
	show("if vs price", corr.IFvsPrice)
	show("sps vs price", corr.SPSvsPrice)

	fmt.Println("\n== score differences (Figure 9) ==")
	diff := analysis.ScoreDifferenceHistogram(db, from, to, 2*time.Hour)
	for _, d := range []float64{0, 0.5, 1, 1.5, 2} {
		fmt.Printf("  |d|=%.1f: %5.1f%%\n", d, diff[d]*100)
	}

	fmt.Println("\n== update frequency (Figure 10) ==")
	for _, ds := range []string{tsdb.DatasetPlacementScore, tsdb.DatasetPrice, tsdb.DatasetInterruptFree} {
		c := analysis.UpdateIntervalCDF(db, ds)
		if c.N() == 0 {
			fmt.Printf("  %-7s no changes recorded\n", ds)
			continue
		}
		fmt.Printf("  %-7s median %.1fh  p25 %.1fh  p75 %.1fh  (%d changes)\n",
			ds, c.Quantile(0.5), c.Quantile(0.25), c.Quantile(0.75), c.N())
	}
}
