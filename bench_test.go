// Package bench regenerates every table and figure of the paper as Go
// benchmarks: `go test -bench=. -benchmem` reruns each experiment and logs
// the measured-vs-paper rows. One benchmark per table/figure, as indexed in
// DESIGN.md.
package bench

import (
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/experiment"
	"repro/internal/repro"
)

// benchArchive caches one collection run shared by the archive-driven
// figures (Table 2, Figures 3-5, 8-10), exactly like SpotLake serves many
// analyses from one archive.
var (
	archiveOnce sync.Once
	archiveRun  *repro.Collected
	archiveErr  error
)

func benchArchive(b *testing.B) *repro.Collected {
	b.Helper()
	archiveOnce.Do(func() {
		opt := repro.CollectOptions{Seed: 22, Days: 60, SampleFrac: 0.10, Interval: 30 * time.Minute}
		archiveRun, archiveErr = repro.Collect(opt)
	})
	if archiveErr != nil {
		b.Fatal(archiveErr)
	}
	return archiveRun
}

// logOnce logs the rendered result on the last iteration only.
func logOnce(b *testing.B, i int, s string) {
	if i == b.N-1 {
		b.Logf("\n%s", s)
	}
}

func BenchmarkTable1RequestLifecycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := repro.Table1(uint64(i) + 7)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, res.String())
	}
}

func BenchmarkTable2ScoreDistribution(b *testing.B) {
	c := benchArchive(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := repro.Table2(c)
		logOnce(b, i, res.String())
	}
}

func BenchmarkTable3FulfillmentInterruption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := repro.DefaultExperiment54Options()
		opt.Seed += uint64(i)
		res, err := repro.Experiment54(opt)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, res.Table3String())
	}
}

func BenchmarkTable4Prediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := repro.DefaultTable4Options()
		opt.Seed += uint64(i)
		res, err := repro.Table4(opt)
		if err != nil {
			b.Fatal(err)
		}
		if rf, ok := res.Get("RF"); ok {
			b.ReportMetric(rf.Accuracy, "rf-accuracy")
		}
		logOnce(b, i, res.String())
	}
}

func BenchmarkFig1QueryOptimization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := repro.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.OptimizedQueries), "queries")
		logOnce(b, i, res.String())
	}
}

func BenchmarkFig3TemporalHeatmap(b *testing.B) {
	c := benchArchive(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := repro.Fig3(c)
		b.ReportMetric(res.OverallSPS, "overall-sps")
		logOnce(b, i, res.String())
	}
}

func BenchmarkFig4SpatialHeatmap(b *testing.B) {
	c := benchArchive(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := repro.Fig4(c)
		logOnce(b, i, res.String())
	}
}

func BenchmarkFig5SizeEffect(b *testing.B) {
	c := benchArchive(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := repro.Fig5(c)
		logOnce(b, i, res.String())
	}
}

func BenchmarkFig6CompositeQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := repro.Fig6(uint64(i)+5, 25)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.FracGreater(), "frac-greater")
		logOnce(b, i, res.String())
	}
}

func BenchmarkFig7TargetCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := repro.Fig7(uint64(i)+6, 30)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, res.String())
	}
}

func BenchmarkFig8Correlations(b *testing.B) {
	c := benchArchive(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := repro.Fig8(c)
		b.ReportMetric(res.FracAbsBelow25, "frac-abs-r-below-0.25")
		logOnce(b, i, res.String())
	}
}

func BenchmarkFig9ScoreDifference(b *testing.B) {
	c := benchArchive(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := repro.Fig9(c)
		b.ReportMetric(res.Histogram[2.0], "frac-contradiction")
		logOnce(b, i, res.String())
	}
}

func BenchmarkFig10UpdateFrequency(b *testing.B) {
	c := benchArchive(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := repro.Fig10(c)
		logOnce(b, i, res.String())
	}
}

func BenchmarkFig11Fulfillment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := repro.DefaultExperiment54Options()
		opt.Seed += uint64(i)
		res, err := repro.Experiment54(opt)
		if err != nil {
			b.Fatal(err)
		}
		hh := analysis.NewCDF(res.Result.ByCategory[experiment.CatHH].FulfillLatenciesSec)
		b.ReportMetric(hh.FractionBelow(1), "hh-frac-le-1s")
		logOnce(b, i, res.Fig11aString())
	}
}

func BenchmarkFig11Interruption(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := repro.DefaultExperiment54Options()
		opt.Seed += uint64(i) + 100
		res, err := repro.Experiment54(opt)
		if err != nil {
			b.Fatal(err)
		}
		logOnce(b, i, res.Fig11bString())
	}
}
